"""Shared infrastructure for the benchmark suite.

Every benchmark file regenerates one table or figure of the paper's
evaluation (see DESIGN.md's per-experiment index).  The cells each
module measures are no longer private pytest params: they come from
:mod:`repro.artifact.cases`, the same declarative case lists the
one-command reproduction sweep (``repro-scc reproduce``) executes — so
the pytest suite and the reproduction artifact can never drift apart.
Modules parametrize over :func:`case_params` and run cells through
:func:`run_case`, which resolves the case's workload graph (cached per
session), applies its memory/time-limit factors and algorithm kwargs,
and attaches the paper's metrics (block I/Os, iterations, status) as
``extra_info`` so they land in pytest-benchmark's report.

Scales are controlled by environment variables so the same suite can be
run larger on beefier machines:

* ``REPRO_BENCH_TIER`` — which tier's case lists to sweep (``paper``,
  the default, mirrors EXPERIMENTS.md; ``smoke`` is the deterministic
  CI subset the artifact manifest pins).
* ``REPRO_BENCH_SCALE`` — fraction of the paper's dataset sizes
  (default 2.5e-4, i.e. the paper's 30M-node sweeps become 7.5K).
* ``REPRO_BENCH_TIME_LIMIT`` — per-run wall-clock limit in seconds
  (default 30); timeouts are *reported* as ``INF`` like the paper does,
  not failed.
"""

from __future__ import annotations

import os

import pytest

from repro.artifact.cases import cases_for
from repro.artifact.plan import build_graph
from repro.artifact.spec import CaseSpec
from repro.bench.harness import run_one
from repro.core import ALGORITHMS
from repro.io.memory import MemoryModel

#: Which tier's case lists the suite sweeps.
TIER = os.environ.get("REPRO_BENCH_TIER", "paper")

#: Reproduction scale relative to the paper's dataset sizes.
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "2.5e-4"))

#: Wall-clock limit per algorithm run (paper: 5 hours -> INF).
TIME_LIMIT = float(os.environ.get("REPRO_BENCH_TIME_LIMIT", "30"))


def case_params(experiment: str):
    """The experiment's tier cases as pytest params (ids = cell ids)."""
    return [
        pytest.param(case, id=f"{case.case}-{case.algorithm}")
        for case in cases_for(experiment, TIER)
    ]


def run_algorithm(
    benchmark,
    graph,
    algorithm,
    workload,
    memory=None,
    time_limit=None,
    params=None,
    keep_result=False,
):
    """Benchmark one algorithm run; never fails on INF/DNF outcomes."""
    time_limit = TIME_LIMIT if time_limit is None else time_limit
    holder = {}

    def once():
        holder["record"] = run_one(
            graph,
            algorithm,
            workload=workload,
            memory=memory,
            time_limit=time_limit,
            params=params,
            keep_result=keep_result,
        )

    benchmark.pedantic(once, rounds=1, iterations=1)
    record = holder["record"]
    benchmark.extra_info.update(
        {
            "workload": workload,
            "status": record.status,
            "ios": record.ios,
            "iterations": record.iterations,
            "num_sccs": record.num_sccs,
            **(params or {}),
        }
    )
    return record


def run_case(benchmark, case: CaseSpec, keep_result=False):
    """Run one declarative sweep cell exactly as the artifact runner does."""
    graph = case_graph(case)
    memory = None
    if case.memory_factor is not None:
        base = MemoryModel.default_capacity(graph.num_nodes)
        memory = MemoryModel(
            num_nodes=graph.num_nodes,
            capacity=int(base * case.memory_factor),
        )
    algorithm = ALGORITHMS[case.algorithm](**dict(case.algo_kwargs))
    return run_algorithm(
        benchmark,
        graph,
        algorithm,
        workload=case.case,
        memory=memory,
        time_limit=TIME_LIMIT * case.time_limit_factor,
        params={
            **dict(case.params),
            "nodes": graph.num_nodes,
            "edges": graph.num_edges,
        },
        keep_result=keep_result,
    )


def case_graph(case: CaseSpec):
    """Resolve a case's workload graph at the suite scale (cached)."""
    return build_graph(case.workload, SCALE)


@pytest.fixture(scope="session")
def bench_scale():
    return SCALE
