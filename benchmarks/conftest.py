"""Shared infrastructure for the benchmark suite.

Every benchmark file regenerates one table or figure of the paper's
evaluation (see DESIGN.md's per-experiment index).  Runs go through
:func:`run_algorithm`, which measures one full algorithm execution and
attaches the paper's metrics (block I/Os, iterations, status) as
``extra_info`` so they land in pytest-benchmark's report.

Scales are controlled by environment variables so the same suite can be
run larger on beefier machines:

* ``REPRO_BENCH_SCALE`` — fraction of the paper's dataset sizes
  (default 2.5e-4, i.e. the paper's 30M-node sweeps become 7.5K).
* ``REPRO_BENCH_TIME_LIMIT`` — per-run wall-clock limit in seconds
  (default 30); timeouts are *reported* as ``INF`` like the paper does,
  not failed.
"""

from __future__ import annotations

import os
from functools import lru_cache

import pytest

from repro.bench.harness import run_one
from repro.workloads.params import params_for_class
from repro.workloads.realworld import (
    cit_patents_like,
    citeseerx_like,
    go_uniprot_like,
    webspam_like,
)

#: Reproduction scale relative to the paper's dataset sizes.
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "2.5e-4"))

#: Wall-clock limit per algorithm run (paper: 5 hours -> INF).
TIME_LIMIT = float(os.environ.get("REPRO_BENCH_TIME_LIMIT", "30"))


def run_algorithm(
    benchmark,
    graph,
    algorithm,
    workload,
    memory=None,
    time_limit=None,
    params=None,
):
    """Benchmark one algorithm run; never fails on INF/DNF outcomes."""
    time_limit = TIME_LIMIT if time_limit is None else time_limit
    holder = {}

    def once():
        holder["record"] = run_one(
            graph,
            algorithm,
            workload=workload,
            memory=memory,
            time_limit=time_limit,
            params=params,
        )

    benchmark.pedantic(once, rounds=1, iterations=1)
    record = holder["record"]
    benchmark.extra_info.update(
        {
            "workload": workload,
            "status": record.status,
            "ios": record.ios,
            "iterations": record.iterations,
            "num_sccs": record.num_sccs,
            **(params or {}),
        }
    )
    return record


# ----------------------------------------------------------------------
# Cached workload generators (one graph per configuration per session).
# ----------------------------------------------------------------------
@lru_cache(maxsize=None)
def synthetic_workload(scc_class: str, paper_nodes: int, degree: float,
                       scc_size: int | None = None, num_sccs: int | None = None,
                       seed: int = 0):
    """Build (and cache) one Table 2 synthetic graph."""
    kwargs = {"paper_nodes": paper_nodes, "degree": degree,
              "scale": SCALE, "seed": seed}
    if scc_class == "massive" and scc_size is not None:
        kwargs["paper_scc_size"] = scc_size
    if scc_class == "large":
        if scc_size is not None:
            kwargs["paper_scc_size"] = scc_size
        if num_sccs is not None:
            kwargs["num_sccs"] = num_sccs
    if scc_class == "small":
        if scc_size is not None:
            kwargs["scc_size"] = scc_size
        if num_sccs is not None:
            kwargs["paper_num_sccs"] = num_sccs
    return params_for_class(scc_class, **kwargs).build()


@lru_cache(maxsize=None)
def webspam_workload(scale: float | None = None, degree: float = 12.0, seed: int = 0):
    """Build (and cache) the WEBSPAM-UK2007 stand-in.

    The real graph's average degree is 35; the default here is 12 to
    keep pure-Python runs tractable (documented in EXPERIMENTS.md) —
    the SCC profile, which drives algorithm behaviour, is unchanged.
    """
    return webspam_like(scale=scale if scale else 0.4 * SCALE,
                        seed=seed, avg_degree=degree)


@lru_cache(maxsize=None)
def real_dataset(name: str):
    """Build (and cache) a citation-style real-dataset stand-in."""
    factories = {
        "cit-patents": cit_patents_like,
        "go-uniprot": go_uniprot_like,
        "citeseerx": citeseerx_like,
    }
    return factories[name](scale=SCALE, seed=0)


@pytest.fixture(scope="session")
def bench_scale():
    return SCALE
