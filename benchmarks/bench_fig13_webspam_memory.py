"""Fig. 13 — WEBSPAM-UK2007: vary internal memory (paper: 1 GB–3 GB).

Paper result: even with a large main memory, DFS-SCC, 2P-SCC and
1P-SCC cannot compute all SCCs on the full webspam graph; 1PB-SCC can,
and it converts additional memory into larger batches, so its time and
I/O fall as M grows.

The reproduction sweeps multiples of the paper's default
``M = 4·(3|V|) + B`` on the webspam stand-in and checks 1PB-SCC's cost
is non-increasing in memory; the three baselines are measured once at
the base memory.
"""

import pytest

from benchmarks.conftest import run_algorithm, webspam_workload

from repro.io.memory import MemoryModel

MEMORY_FACTORS = [1.0, 1.5, 2.0, 2.5, 3.0]


def memory_at(graph, factor: float) -> MemoryModel:
    base = MemoryModel.default_capacity(graph.num_nodes)
    return MemoryModel(num_nodes=graph.num_nodes, capacity=int(base * factor))


@pytest.mark.parametrize("factor", MEMORY_FACTORS)
def test_fig13_1pb_memory_sweep(benchmark, factor):
    planted = webspam_workload()
    graph = planted.graph
    record = run_algorithm(
        benchmark,
        graph,
        "1PB-SCC",
        workload=f"webspam-M{factor:g}x",
        memory=memory_at(graph, factor),
        time_limit=300,
        params={"memory_factor": factor, "nodes": graph.num_nodes},
    )
    assert record.ok  # 1PB-SCC completes at every memory size


@pytest.mark.parametrize("algorithm", ["1P-SCC", "2P-SCC", "DFS-SCC"])
def test_fig13_baselines_at_base_memory(benchmark, algorithm):
    planted = webspam_workload()
    graph = planted.graph
    run_algorithm(
        benchmark,
        graph,
        algorithm,
        workload="webspam-M1x",
        memory=memory_at(graph, 1.0),
        params={"memory_factor": 1.0, "nodes": graph.num_nodes},
    )
