"""Fig. 13 — WEBSPAM-UK2007: vary internal memory (paper: 1 GB–3 GB).

Paper result: even with a large main memory, DFS-SCC, 2P-SCC and
1P-SCC cannot compute all SCCs on the full webspam graph; 1PB-SCC can,
and it converts additional memory into larger batches, so its time and
I/O fall as M grows.

The reproduction sweeps multiples of the paper's default
``M = 4·(3|V|) + B`` on the webspam stand-in and checks 1PB-SCC's cost
is non-increasing in memory; the three baselines are measured once at
the base memory.  Cells (with their memory factors) come from
:func:`repro.artifact.cases.fig13_cases`.
"""

import pytest

from benchmarks.conftest import case_params, run_case

CASES = case_params("fig13")


@pytest.mark.parametrize("case", CASES)
def test_fig13_memory_sweep(benchmark, case):
    record = run_case(benchmark, case)
    if case.algorithm == "1PB-SCC":
        assert record.ok  # 1PB-SCC completes at every memory size
