"""Fig. 14 — synthetic graphs: vary |V| from 30M to 70M (scaled).

Paper result, for each of the three SCC classes (Massive/Large/Small):
time and I/O grow with |V| for every algorithm; DFS-SCC grows sharply
and is the most expensive; 2P-SCC times out beyond 40M nodes on
Massive-SCC; 1P-SCC is much cheaper thanks to early acceptance +
rejection; 1PB-SCC is best overall, with an I/O count close to
1P-SCC's (batching targets CPU, not I/O).

Six panels: (a,b) Massive-SCC time/I-O, (c,d) Large-SCC, (e,f)
Small-SCC — all regenerated here as one sweep per class with both
metrics captured per run.
"""

import pytest

from benchmarks.conftest import TIME_LIMIT, run_algorithm, synthetic_workload

PAPER_NODES = [30_000_000, 40_000_000, 50_000_000, 60_000_000, 70_000_000]
ALGORITHMS = ["1PB-SCC", "1P-SCC", "2P-SCC", "DFS-SCC"]
CLASSES = ["massive", "large", "small"]


@pytest.mark.parametrize("scc_class", CLASSES)
@pytest.mark.parametrize("paper_nodes", PAPER_NODES)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig14_vary_node_size(benchmark, scc_class, paper_nodes, algorithm):
    if algorithm == "DFS-SCC" and paper_nodes > PAPER_NODES[0]:
        pytest.skip(
            "paper Fig. 14: DFS-SCC 'increases sharply' and exceeds the "
            "time budget beyond the smallest size; measured there only"
        )
    planted = synthetic_workload(scc_class, paper_nodes, degree=5)
    graph = planted.graph
    time_limit = TIME_LIMIT * 2 if algorithm == "2P-SCC" else TIME_LIMIT
    run_algorithm(
        benchmark,
        graph,
        algorithm,
        workload=f"{scc_class}-{paper_nodes // 1_000_000}M",
        time_limit=time_limit,
        params={
            "scc_class": scc_class,
            "paper_nodes": paper_nodes,
            "nodes": graph.num_nodes,
            "edges": graph.num_edges,
        },
    )
