"""Fig. 14 — synthetic graphs: vary |V| from 30M to 70M (scaled).

Paper result, for each of the three SCC classes (Massive/Large/Small):
time and I/O grow with |V| for every algorithm; DFS-SCC grows sharply
and is the most expensive; 2P-SCC times out beyond 40M nodes on
Massive-SCC; 1P-SCC is much cheaper thanks to early acceptance +
rejection; 1PB-SCC is best overall, with an I/O count close to
1P-SCC's (batching targets CPU, not I/O).

Six panels: (a,b) Massive-SCC time/I-O, (c,d) Large-SCC, (e,f)
Small-SCC — all regenerated here as one sweep per class with both
metrics captured per run.  Cells (including DFS-SCC's
smallest-size-only rule and 2P-SCC's 2x headroom) come from
:func:`repro.artifact.cases.fig14_cases`.
"""

import pytest

from benchmarks.conftest import case_params, run_case

CASES = case_params("fig14")


@pytest.mark.parametrize("case", CASES)
def test_fig14_vary_node_size(benchmark, case):
    run_case(benchmark, case)
