"""Table 1 — nodes/edges reduced in 1PB-SCC's first iterations.

Paper result on WEBSPAM-UK2007: the first 5 iterations prune 29.5M
nodes (4.8-8.6 % each) and 646M edges (2.9-3.9 % each); in total >99 %
of edges are pruned before the final iteration; 21 iterations with
early acceptance + rejection versus >50 without.

The reproduction checks the same shape on the webspam stand-in: heavy
front-loaded pruning with most edges gone before the last iteration.
(At reproduction scale the giant SCC often falls in one batch, so the
pruning is even more front-loaded than the paper's — documented in
EXPERIMENTS.md.)  Cells come from :func:`repro.artifact.cases.table1_cases`:
the optimized configuration plus the both-optimizations-off contrast.
"""

import pytest

from benchmarks.conftest import case_graph, case_params, run_case

CASES = case_params("table1")


@pytest.mark.parametrize("case", CASES)
def test_table1_reduction_rows(benchmark, case):
    record = run_case(benchmark, case, keep_result=True)
    assert record.ok
    stats = record.result.stats

    graph = case_graph(case)
    rows = stats.per_iteration
    total_nodes = graph.num_nodes
    total_edges = graph.num_edges
    pruned_edges = sum(r.edges_reduced for r in rows[:-1])
    benchmark.extra_info.update(
        {
            "nodes_reduced_per_iter": [r.nodes_reduced for r in rows[:5]],
            "edges_reduced_per_iter": [r.edges_reduced for r in rows[:5]],
            "pct_nodes_reduced_per_iter": [
                round(100 * r.nodes_reduced / total_nodes, 2) for r in rows[:5]
            ],
            "pct_edges_reduced_per_iter": [
                round(100 * r.edges_reduced / total_edges, 2) for r in rows[:5]
            ],
            "pct_edges_pruned_before_last": round(
                100 * pruned_edges / total_edges, 2
            ),
        }
    )
    if not dict(case.algo_kwargs).get("enable_acceptance", True):
        return  # the contrast row only contributes its iteration count
    # The paper's headline: the overwhelming majority of edges are
    # pruned before the final iteration.
    assert pruned_edges / total_edges > 0.60
    # And the pruning is front-loaded into the earliest iterations.
    early = sum(r.edges_reduced for r in rows[:2])
    assert early >= 0.5 * pruned_edges
