"""Table 1 — nodes/edges reduced in 1PB-SCC's first iterations.

Paper result on WEBSPAM-UK2007: the first 5 iterations prune 29.5M
nodes (4.8-8.6 % each) and 646M edges (2.9-3.9 % each); in total >99 %
of edges are pruned before the final iteration; 21 iterations with
early acceptance + rejection versus >50 without.

The reproduction checks the same shape on the webspam stand-in: heavy
front-loaded pruning with most edges gone before the last iteration.
(At reproduction scale the giant SCC often falls in one batch, so the
pruning is even more front-loaded than the paper's — documented in
EXPERIMENTS.md.)
"""

from benchmarks.conftest import webspam_workload

from repro.bench.harness import run_one
from repro.core.one_phase_batch import OnePhaseBatchSCC


def test_table1_reduction_rows(benchmark):
    planted = webspam_workload()
    graph = planted.graph
    holder = {}

    def once():
        holder["record"] = run_one(
            graph,
            OnePhaseBatchSCC(),
            workload="webspam-like",
            time_limit=300,
            keep_result=True,
        )

    benchmark.pedantic(once, rounds=1, iterations=1)
    record = holder["record"]
    assert record.ok
    stats = record.result.stats

    rows = stats.per_iteration
    total_nodes = graph.num_nodes
    total_edges = graph.num_edges
    pruned_edges = sum(r.edges_reduced for r in rows[:-1])
    benchmark.extra_info.update(
        {
            "nodes": total_nodes,
            "edges": total_edges,
            "iterations": stats.iterations,
            "ios": stats.io.total,
            "nodes_reduced_per_iter": [r.nodes_reduced for r in rows[:5]],
            "edges_reduced_per_iter": [r.edges_reduced for r in rows[:5]],
            "pct_nodes_reduced_per_iter": [
                round(100 * r.nodes_reduced / total_nodes, 2) for r in rows[:5]
            ],
            "pct_edges_reduced_per_iter": [
                round(100 * r.edges_reduced / total_edges, 2) for r in rows[:5]
            ],
            "pct_edges_pruned_before_last": round(
                100 * pruned_edges / total_edges, 2
            ),
        }
    )
    # The paper's headline: the overwhelming majority of edges are
    # pruned before the final iteration.
    assert pruned_edges / total_edges > 0.60
    # And the pruning is front-loaded into the earliest iterations.
    early = sum(r.edges_reduced for r in rows[:2])
    assert early >= 0.5 * pruned_edges
