"""Fig. 15 — synthetic graphs: vary average degree from 3 to 7.

Paper result: time and I/O increase with degree for every algorithm;
1PB-SCC is best on both metrics with the slowest growth rate (denser
graphs mean more edges inside SCCs, which batched in-memory contraction
exploits).  DFS-SCC and 2P-SCC are omitted from the paper's plots —
"they can only handle degree 3 and 4" — so the case list measures them
at degree 3 only (:func:`repro.artifact.cases.fig15_cases`).
"""

import pytest

from benchmarks.conftest import case_params, run_case

CASES = case_params("fig15")


@pytest.mark.parametrize("case", CASES)
def test_fig15_vary_degree(benchmark, case):
    run_case(benchmark, case)
