"""Fig. 15 — synthetic graphs: vary average degree from 3 to 7.

Paper result: time and I/O increase with degree for every algorithm;
1PB-SCC is best on both metrics with the slowest growth rate (denser
graphs mean more edges inside SCCs, which batched in-memory contraction
exploits).  DFS-SCC and 2P-SCC are omitted from the paper's plots —
"they can only handle degree 3 and 4" — so here they are measured at
degree 3 only.
"""

import pytest

from benchmarks.conftest import run_algorithm, synthetic_workload

DEGREES = [3, 4, 5, 6, 7]
CLASSES = ["massive", "large", "small"]


@pytest.mark.parametrize("scc_class", CLASSES)
@pytest.mark.parametrize("degree", DEGREES)
@pytest.mark.parametrize("algorithm", ["1PB-SCC", "1P-SCC"])
def test_fig15_vary_degree(benchmark, scc_class, degree, algorithm):
    planted = synthetic_workload(scc_class, 30_000_000, degree=degree)
    graph = planted.graph
    run_algorithm(
        benchmark,
        graph,
        algorithm,
        workload=f"{scc_class}-d{degree}",
        params={
            "scc_class": scc_class,
            "degree": degree,
            "nodes": graph.num_nodes,
            "edges": graph.num_edges,
        },
    )


@pytest.mark.parametrize("scc_class", CLASSES)
@pytest.mark.parametrize("algorithm", ["2P-SCC", "DFS-SCC"])
def test_fig15_baselines_low_degree(benchmark, scc_class, algorithm):
    """The paper notes DFS/2P only handle degrees 3-4; measure degree 3."""
    planted = synthetic_workload(scc_class, 30_000_000, degree=3)
    graph = planted.graph
    run_algorithm(
        benchmark,
        graph,
        algorithm,
        workload=f"{scc_class}-d3",
        params={
            "scc_class": scc_class,
            "degree": 3,
            "nodes": graph.num_nodes,
            "edges": graph.num_edges,
        },
    )
