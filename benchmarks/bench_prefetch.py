"""Wall-clock benefit of the counted page cache + block prefetcher.

This is the headline measurement for the prefetch/cache work: 1P-SCC
and 1PB-SCC re-scan the shrinking edge file every iteration, so a page
cache sized to hold the (already-reduced) file turns iterations 2..k
into pure in-memory passes, and the prefetcher overlaps the cold scan's
block latency with the consumer's CPU work.  The claim gated here:
**at least 20% faster wall-clock with the policy on**, with identical
SCC partitions — while the *counted* block I/O stays byte-for-byte
identical when only prefetching is enabled (the transparency contract,
checked by ``benchmarks/regression.py`` and ``tests/test_io_prefetch.py``).

Measurement regime: the paper's machines were I/O-bound — this Python
reproduction is not, because the CPU side runs ~100x slower than C++
while the "disk" is served from the OS page cache in microseconds.  To
measure the policy where it matters, the benchmark enables the I/O
model's **simulated disk** (`REPRO_SIM_SEEK_MS` / `REPRO_SIM_TRANSFER_MS`,
see docs/io_model.md): each counted block transfer sleeps for its
modeled time, scaled by the same factor Python inflates the CPU side,
restoring the paper's CPU-to-I/O balance.  The profile and both sides
of every comparison are recorded in the output JSON so the regime is
auditable.  Counted I/O with the cache ON legitimately drops (hits are
served from memory; the modeled disk head never moves).

Run standalone (pytest-benchmark not required)::

    python -m benchmarks.bench_prefetch               # default output
    python -m benchmarks.bench_prefetch --out BENCH_prefetch.json

Environment: ``REPRO_BENCH_SCALE`` scales the webspam stand-in (same
knob as the regression gate), ``REPRO_BENCH_ROUNDS`` the timing rounds
(median is reported).
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
from typing import Dict, List, Optional

#: Simulated disk profile: a 2013-era laptop disk (~8 ms seek, ~60 MB/s
#: sustained) with both numbers scaled by the factor Python slows the
#: CPU side relative to the paper's C++ — so the benchmark runs at the
#: paper's CPU-to-I/O balance.  Must be exported BEFORE repro.io is
#: used (devices read the env at construction).
SIM_SEEK_MS = float(os.environ.get("REPRO_SIM_SEEK_MS", "0") or 0) or 100.0
SIM_TRANSFER_MS = float(os.environ.get("REPRO_SIM_TRANSFER_MS", "0") or 0) or 5.0
os.environ["REPRO_SIM_SEEK_MS"] = str(SIM_SEEK_MS)
os.environ["REPRO_SIM_TRANSFER_MS"] = str(SIM_TRANSFER_MS)

from repro.bench.harness import run_one  # noqa: E402
from repro.core.validate import partitions_equal  # noqa: E402
from repro.graph.digraph import Digraph  # noqa: E402
from repro.workloads.realworld import webspam_like  # noqa: E402

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "2.5e-4"))
ROUNDS = int(os.environ.get("REPRO_BENCH_ROUNDS", "3"))

ALGORITHMS = ("1P-SCC", "1PB-SCC")

#: 8 KiB blocks: small enough that the gate-scale workload spans
#: hundreds of blocks (so pipelining has something to pipeline), large
#: enough that decoding stays vectorised.
BLOCK_SIZE = 8192

#: Cache sized to hold the whole (reduced) edge file of the gate-scale
#: workload; capacity is counted in blocks so memory stays auditable.
CACHE_BLOCKS = 4096

#: Deeper than DEFAULT_PREFETCH_DEPTH: 1P-SCC's per-block CPU is bursty
#: (a few ancestor-walk-heavy blocks, then fast drains), so a deep queue
#: is what lets the reader run ahead through the cheap stretches.
PREFETCH_DEPTH = 64

#: The acceptance bar: policy-on must be at least this much faster.
MIN_IMPROVEMENT = 0.20

DEFAULT_OUT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_prefetch.json",
)


def _workload() -> Digraph:
    return webspam_like(scale=0.4 * SCALE, seed=0, avg_degree=12.0).graph


def _time_config(
    graph: Digraph,
    algorithm: str,
    prefetch_depth: int,
    cache_blocks: int,
    rounds: int,
) -> Dict[str, object]:
    """Median-of-``rounds`` algorithm wall-clock for one policy cell.

    Times ``result.stats.wall_seconds`` (the algorithm only — graph
    materialisation is setup, not the measured run).
    """
    seconds: List[float] = []
    ios: Optional[int] = None
    cache_hits = 0
    prefetched = 0
    stalls = 0
    labels = None
    for _ in range(rounds):
        record = run_one(
            graph,
            algorithm,
            workload="webspam-prefetch-bench",
            block_size=BLOCK_SIZE,
            keep_result=True,
            prefetch_depth=prefetch_depth,
            cache_blocks=cache_blocks,
        )
        if not record.ok:
            raise RuntimeError(f"{algorithm} did not complete: {record.status}")
        assert record.result is not None and record.seconds is not None
        seconds.append(record.seconds)
        ios = record.ios
        cache_hits = record.result.stats.io.cache_hits
        prefetched = record.result.stats.io.prefetched
        stalls = record.result.stats.io.prefetch_stalls
        labels = record.result.labels
    return {
        "prefetch_depth": prefetch_depth,
        "cache_blocks": cache_blocks,
        "rounds": rounds,
        "seconds_median": statistics.median(seconds),
        "seconds_best": min(seconds),
        "seconds_all": seconds,
        "block_ios": ios,
        "cache_hits": cache_hits,
        "prefetched": prefetched,
        "prefetch_stalls": stalls,
        "_labels": labels,  # stripped before serialization
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="benchmarks.bench_prefetch",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument(
        "--out", default=DEFAULT_OUT, metavar="PATH",
        help=f"result JSON path (default: {os.path.relpath(DEFAULT_OUT)})",
    )
    parser.add_argument(
        "--rounds", type=int, default=ROUNDS,
        help="timing rounds per cell (median reported)",
    )
    parser.add_argument(
        "--no-assert", action="store_true",
        help="record results without enforcing the 20%% bar",
    )
    args = parser.parse_args(argv)

    graph = _workload()
    print(
        f"workload: webspam-like scale={0.4 * SCALE:g} "
        f"({graph.num_nodes:,} nodes, {graph.num_edges:,} edges), "
        f"B={BLOCK_SIZE}, simulated disk seek={SIM_SEEK_MS:g}ms "
        f"transfer={SIM_TRANSFER_MS:g}ms, {args.rounds} rounds per cell"
    )

    results: Dict[str, Dict[str, object]] = {}
    failures: List[str] = []
    for algorithm in ALGORITHMS:
        baseline = _time_config(graph, algorithm, 0, 0, args.rounds)
        tuned = _time_config(
            graph, algorithm, PREFETCH_DEPTH, CACHE_BLOCKS, args.rounds
        )
        if not partitions_equal(baseline.pop("_labels"), tuned.pop("_labels")):
            raise RuntimeError(f"{algorithm}: policy changed the SCC partition")
        base_s = float(baseline["seconds_median"])  # type: ignore[arg-type]
        tuned_s = float(tuned["seconds_median"])  # type: ignore[arg-type]
        improvement = (base_s - tuned_s) / base_s if base_s > 0 else 0.0
        results[algorithm] = {
            "baseline": baseline,
            "prefetch_cache": tuned,
            "improvement": improvement,
        }
        print(
            f"  {algorithm}: baseline {base_s:.3f}s "
            f"({baseline['block_ios']:,} block I/Os) -> "
            f"cache+prefetch {tuned_s:.3f}s "
            f"({tuned['block_ios']:,} block I/Os, "
            f"{tuned['cache_hits']:,} cache hits, "
            f"{tuned['prefetched']:,} prefetched): "
            f"{improvement:+.1%}"
        )
        if improvement < MIN_IMPROVEMENT:
            failures.append(
                f"{algorithm}: {improvement:+.1%} < +{MIN_IMPROVEMENT:.0%} bar"
            )

    payload = {
        "schema": 1,
        "workload": {
            "generator": "webspam_like",
            "scale": 0.4 * SCALE,
            "nodes": graph.num_nodes,
            "edges": graph.num_edges,
            "block_size": BLOCK_SIZE,
        },
        "simulated_disk": {
            "seek_ms": SIM_SEEK_MS,
            "transfer_ms": SIM_TRANSFER_MS,
            "note": (
                "per-block sleep on counted transfers; restores the "
                "paper's CPU-to-I/O balance which Python's ~100x CPU "
                "slowdown otherwise distorts (docs/io_model.md)"
            ),
        },
        "policy": {
            "prefetch_depth": PREFETCH_DEPTH,
            "cache_blocks": CACHE_BLOCKS,
        },
        "min_improvement": MIN_IMPROVEMENT,
        "results": results,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out}")

    if failures and not args.no_assert:
        print("\nbelow the improvement bar:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
