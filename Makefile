.PHONY: install test lint bench bench-smoke bench-golden bench-prefetch \
	bench-kernels bench-parallel bench-service chaos service-smoke \
	service-chaos examples suite clean \
	reproduce-smoke reproduce-paper artifact-golden

PYTHON ?= python

install:
	$(PYTHON) -m pip install -e ".[test]"

test:
	$(PYTHON) -m pytest tests/

# Contract analyzer always runs; ruff/mypy only when installed.
lint:
	$(PYTHON) -m repro.cli lint src
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests; \
	else \
		echo "ruff not installed -- skipping (pip install -e '.[lint]')"; \
	fi
	@if command -v mypy >/dev/null 2>&1; then \
		mypy -p repro.io -p repro.core; \
	else \
		echo "mypy not installed -- skipping (pip install -e '.[lint]')"; \
	fi

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Mirrors the CI bench-regression job: counted I/O and SCC partitions
# of the small-scale Table 1 / Fig. 12 variants vs the checked-in
# goldens, plus the prefetch-transparency re-runs.
bench-smoke:
	$(PYTHON) -m benchmarks.regression --check \
		--out bench-regression-results.json \
		--trace-dir bench-regression-traces

# Regenerate the goldens after an *intentional* I/O-count change.
bench-golden:
	$(PYTHON) -m benchmarks.regression --write-golden

# Wall-clock benefit of cache + prefetch -> BENCH_prefetch.json.
bench-prefetch:
	$(PYTHON) -m benchmarks.bench_prefetch

# Edge-scan CPU throughput of the vector kernels -> BENCH_kernels.json
# (simulated disk forced off; gates 1P-SCC at >= 2x over scalar).
bench-kernels:
	$(PYTHON) -m benchmarks.bench_kernels

# Edge-scan throughput of the parallel scan executor -> BENCH_parallel.json
# (simulated disk forced off; gates 1P-SCC at >= 2x at 4 workers over
# the single-process vector baseline).
bench-parallel:
	$(PYTHON) -m benchmarks.bench_parallel

# Serving-plane latency/shedding/rebuild-availability of the query
# daemon -> BENCH_service.json (gates zero wrong answers, >= 95 %
# availability during a rebuild, typed shedding under overload).
bench-service:
	$(PYTHON) -m benchmarks.bench_service

# Chaos gate: the fault-injection / crash-consistency / checkpoint-resume
# test files, plus an end-to-end crash -> resume through the CLI (exit
# code 4 marks a simulated crash; the resumed run must succeed).
chaos:
	$(PYTHON) -m pytest -q tests/test_io_faults.py tests/test_io_atomic.py \
		tests/test_checkpoint_resume.py
	rm -rf chaos-workdir && mkdir -p chaos-workdir
	$(PYTHON) -m repro.cli generate --kind small --scale 2e-3 \
		--out chaos-workdir/g.rgr
	$(PYTHON) -m repro.cli compute chaos-workdir/g.rgr \
		--algorithm 1P-SCC --block-size 4096 \
		--fault-plan "seed=1;crash@scan:1" \
		--checkpoint-dir chaos-workdir/ckpt; \
		test $$? -eq 4 || { echo "expected exit 4 (simulated crash)"; exit 1; }
	$(PYTHON) -m repro.cli compute chaos-workdir/g.rgr \
		--algorithm 1P-SCC --block-size 4096 \
		--checkpoint-dir chaos-workdir/ckpt --resume
	rm -rf chaos-workdir

# The query daemon end to end over the wire: address line, every op,
# typed errors, ingest -> background rebuild, protocol shutdown.
service-smoke:
	$(PYTHON) scripts/service_smoke.py

# The daemon's crash drill: SIGKILL mid-build and mid-rebuild, restart,
# resume; fingerprints must match an uninterrupted reference run.
service-chaos:
	$(PYTHON) scripts/service_chaos_drill.py

# One-command reproduction artifact (see docs/reproduction_guide.md).
# Smoke tier is the CI gate: the sweep's MANIFEST.json must match the
# committed golden byte-for-byte.
reproduce-smoke:
	$(PYTHON) -m repro.cli reproduce --scale smoke \
		--out bench_results/artifact-smoke \
		--verify benchmarks/golden/artifact_manifest.json

# The EXPERIMENTS.md configuration: full case lists, INF reported.
reproduce-paper:
	$(PYTHON) -m repro.cli reproduce --scale paper \
		--out bench_results/artifact-paper --heartbeat 30

# Regenerate the committed smoke-tier golden manifest after an
# *intentional* I/O-model change (review the diff before committing).
artifact-golden:
	$(PYTHON) -m repro.cli reproduce --scale smoke --fresh \
		--out bench_results/artifact-smoke
	cp bench_results/artifact-smoke/artifact/MANIFEST.json \
		benchmarks/golden/artifact_manifest.json
	@echo "updated benchmarks/golden/artifact_manifest.json"

# full paper evaluation with CSV + report output
suite:
	$(PYTHON) -m repro.cli bench --outdir suite_results

examples:
	@for script in examples/*.py; do \
		echo "== $$script =="; \
		$(PYTHON) $$script || exit 1; \
	done

# bench_results/ holds measured records -- clean must never delete them.
clean:
	rm -rf build src/repro.egg-info .pytest_cache .benchmarks \
		suite_results bench-regression-results.json bench-regression-traces \
		chaos-workdir service-smoke-workdir service-chaos-workdir
	find . -name '__pycache__' -type d -exec rm -rf {} +
