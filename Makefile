.PHONY: install test bench examples suite clean

PYTHON ?= python

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# full paper evaluation with CSV + report output
suite:
	$(PYTHON) -m repro.cli bench --outdir suite_results

examples:
	@for script in examples/*.py; do \
		echo "== $$script =="; \
		$(PYTHON) $$script || exit 1; \
	done

clean:
	rm -rf build src/repro.egg-info .pytest_cache .benchmarks \
		suite_results bench_results/*.json
	find . -name '__pycache__' -type d -exec rm -rf {} +
