"""Consolidate pytest-benchmark JSON exports into experiment tables.

Thin shim over :mod:`repro.artifact.render` (the same renderer behind
``repro-scc reproduce``'s ``artifact/report.md``).  Reads every
``bench_results/*.json`` produced by::

    pytest benchmarks/... --benchmark-json=bench_results/batchN.json

and prints, per benchmark file, a compact table of
(case, status, seconds, block I/Os, iterations) — the raw material for
EXPERIMENTS.md.

Run with::

    python tools/render_experiments.py [results_dir] [--strict]

A file that cannot be parsed, or parses but has no ``benchmarks`` list
(a schema-less export), is reported on stderr.  Under ``--strict`` (the
CI configuration) any such problem exits non-zero instead of silently
shrinking the tables — a half-written export must fail the build, not
render as "experiment absent".
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.artifact.render import (
    load_benchmark_exports,
    render_benchmark_exports,
)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="render_experiments",
        description="Render pytest-benchmark JSON exports as experiment "
                    "tables (see also: repro-scc reproduce).",
    )
    parser.add_argument("results_dir", nargs="?", default="bench_results",
                        help="directory of pytest-benchmark exports "
                             "(default: bench_results)")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero if any export is unreadable or "
                             "schema-less instead of skipping it")
    args = parser.parse_args(argv)

    records, problems = load_benchmark_exports(args.results_dir)
    for problem in problems:
        print(f"problem: {problem}", file=sys.stderr)
    if records:
        print(render_benchmark_exports(records))
    if problems and args.strict:
        print(f"{len(problems)} problem(s) in strict mode", file=sys.stderr)
        return 1
    if not records:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
