"""Consolidate pytest-benchmark JSON exports into experiment tables.

Reads every ``bench_results/batch*.json`` produced by::

    pytest benchmarks/... --benchmark-json=bench_results/batchN.json

and prints, per benchmark file, a compact table of
(case, status, seconds, block I/Os, iterations) — the raw material for
EXPERIMENTS.md.

Run with::

    python tools/render_experiments.py [results_dir]
"""

from __future__ import annotations

import glob
import json
import os
import sys
from collections import defaultdict


def load_records(results_dir: str):
    records = []
    for path in sorted(glob.glob(os.path.join(results_dir, "*.json"))):
        try:
            with open(path) as handle:
                data = json.load(handle)
        except json.JSONDecodeError:
            print(f"skipping unreadable {path} (run in progress?)", file=sys.stderr)
            continue
        for bench in data.get("benchmarks", []):
            extra = bench.get("extra_info", {})
            group = bench["name"].split("[")[0]
            case = bench["name"][len(group):].strip("[]")
            records.append(
                {
                    "file": os.path.basename(bench.get("fullname", "")).split("::")[0]
                    or group,
                    "group": group,
                    "case": case or "-",
                    "seconds": bench["stats"]["mean"],
                    "status": extra.get("status", "ok"),
                    "ios": extra.get("ios"),
                    "iterations": extra.get("iterations"),
                    "extra": extra,
                }
            )
    return records


def render(records) -> str:
    by_group = defaultdict(list)
    for record in records:
        by_group[record["group"]].append(record)
    lines = []
    for group in sorted(by_group):
        lines.append(f"\n## {group}")
        lines.append(
            f"{'case':<28} {'status':<6} {'seconds':>9} {'block I/Os':>11} "
            f"{'iters':>6}"
        )
        lines.append("-" * 64)
        for record in sorted(by_group[group], key=lambda r: r["case"]):
            seconds = (
                f"{record['seconds']:.3f}" if record["status"] == "ok" else "-"
            )
            ios = (
                f"{record['ios']:,}"
                if record["status"] == "ok" and record["ios"] is not None
                else record["status"]
            )
            iters = (
                str(record["iterations"])
                if record["iterations"] is not None
                else "-"
            )
            lines.append(
                f"{record['case']:<28} {record['status']:<6} {seconds:>9} "
                f"{ios:>11} {iters:>6}"
            )
    return "\n".join(lines)


def main() -> int:
    results_dir = sys.argv[1] if len(sys.argv) > 1 else "bench_results"
    records = load_records(results_dir)
    if not records:
        print(f"no benchmark JSON files found in {results_dir}/", file=sys.stderr)
        return 1
    print(render(records))
    return 0


if __name__ == "__main__":
    sys.exit(main())
