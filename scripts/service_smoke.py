#!/usr/bin/env python
"""End-to-end smoke of the SCC query daemon, over the wire.

Boots ``repro-scc serve`` as a subprocess on a generated webspam-like
graph and walks the whole serving surface: the stable stdout address
line, health/stats, every query op, typed errors for malformed and
out-of-range requests, ingest with an automatic background rebuild
(answers must stay identical — the ingested edges are duplicates), and
a clean shutdown via the protocol.

    python scripts/service_smoke.py [--workdir DIR] [--scale S]

Exit 0 on success; non-zero with the daemon's output on any failure.
"""

from __future__ import annotations

import argparse
import os
import shutil
import sys

from service_common import (
    CheckFailure,
    check,
    poll_health,
    run_cli,
    spawn_daemon,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    parser.add_argument("--workdir", default="service-smoke-workdir")
    parser.add_argument("--scale", default="2e-5")
    args = parser.parse_args(argv)

    from repro.service.client import ServiceClient, wait_until_ready

    shutil.rmtree(args.workdir, ignore_errors=True)
    os.makedirs(args.workdir)
    graph = os.path.join(args.workdir, "g.rgr")
    run_cli(
        ["generate", "--kind", "webspam", "--scale", args.scale,
         "--out", graph]
    )

    daemon = spawn_daemon(
        [graph, "--port", "0", "--query-workers", "2",
         "--service-root", os.path.join(args.workdir, "svc")]
    )
    try:
        host, port = daemon.wait_serving_line()
        print(f"daemon up on {host}:{port}")
        health = wait_until_ready(host, port, timeout=300)
        check(health["state"] == "serving", "daemon reaches SERVING", health)
        check(health["generation"] == 0, "first generation is 0", health)
        check(bool(health["fingerprint"]), "fingerprint published", health)
        fingerprint = health["fingerprint"]
        num_nodes = int(health["num_nodes"])

        with ServiceClient(host, port, timeout=30.0) as client:
            reachable = client.reach(0, num_nodes - 1)
            scc = client.scc(0)
            check("scc" in scc and "size" in scc, "scc op answers", scc)
            members = client.members(scc["scc"], limit=5)
            check(
                0 in members["members"] or members["truncated"],
                "members op covers the queried node",
                members,
            )
            topo = client.toposort(0)
            check("layer" in topo, "toposort op answers", topo)

            bad = client.request("explode")
            check(
                not bad["ok"] and bad["error"]["code"] == "bad_request",
                "unknown op is a typed bad_request",
                bad,
            )
            oob = client.request("reach", u=0, v=10**9)
            check(
                not oob["ok"] and oob["error"]["code"] == "out_of_range",
                "out-of-range node is typed",
                oob,
            )

            stats = client.stats()
            check(
                "admission" in stats and "shed_total" in stats,
                "stats op exposes robustness counters",
                stats,
            )

            # Duplicate edges: the rebuild must land generation 1 with
            # the exact same condensation (and therefore answers).
            dup = client.ingest([(0, 1), (0, 1)])
            check(
                dup["rebuild"]["scheduled"],
                "ingest schedules a background rebuild",
                dup,
            )
        health = poll_health(
            host,
            port,
            lambda h: h["state"] == "serving" and h["generation"] == 1,
        )
        check(
            health["fingerprint"] == fingerprint,
            "duplicate-edge rebuild preserves the fingerprint",
            health,
        )
        with ServiceClient(host, port, timeout=30.0) as client:
            check(
                client.reach(0, num_nodes - 1) == reachable,
                "answers unchanged across the rebuild",
            )
            client.shutdown()
        code = daemon.wait_exit()
        check(code == 0, "protocol shutdown exits 0", code)
    except CheckFailure as failure:
        print(f"  FAIL  {failure}", file=sys.stderr)
        print(daemon.output(), file=sys.stderr)
        daemon.proc.kill()
        return 1
    except Exception:
        print(daemon.output(), file=sys.stderr)
        daemon.proc.kill()
        raise
    print("service smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
