#!/usr/bin/env python
"""Chaos drill: SIGKILL the daemon mid-build and mid-rebuild.

The crash-tolerance acceptance test for the query daemon, run against
real subprocesses:

1. **Reference** — a clean daemon builds generation 0, ingests a fixed
   edge, rebuilds to generation 1; both fingerprints are recorded and
   the daemon shuts down cleanly.
2. **Kill mid-build** — a fresh service root, with ``slow@`` fault
   tokens stretching every scan so the window is unmissable; the
   daemon is SIGKILLed while still BUILDING.
3. **Resume** — a restarted daemon must finish generation 0 from its
   checkpoints and publish the *identical* fingerprint.
4. **Kill mid-rebuild** — the same daemon ingests the same edge and is
   SIGKILLed while DEGRADED_STALE with the rebuild in flight.
5. **Resume again** — a final restart must first serve the last-good
   generation stale, then complete generation 1 with the fingerprint
   of the uninterrupted reference run, and answer a query across the
   ingested edge.

    python scripts/service_chaos_drill.py [--workdir DIR] [--scale S]

Exit 0 on success; non-zero with the daemons' output on any failure.
"""

from __future__ import annotations

import argparse
import os
import shutil
import sys
import time

from service_common import (
    CheckFailure,
    check,
    poll_health,
    run_cli,
    spawn_daemon,
)

#: Stretch every scan by 400 ms so BUILDING / DEGRADED_STALE windows
#: are seconds wide even on the drill's tiny graph.
SLOW_PLAN = "seed=1;" + ";".join(f"slow@{i}:400" for i in range(8))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    parser.add_argument("--workdir", default="service-chaos-workdir")
    parser.add_argument("--scale", default="2e-5")
    args = parser.parse_args(argv)

    from repro.service.client import ServiceClient, wait_until_ready

    shutil.rmtree(args.workdir, ignore_errors=True)
    os.makedirs(args.workdir)
    graph = os.path.join(args.workdir, "g.rgr")
    run_cli(
        ["generate", "--kind", "webspam", "--scale", args.scale,
         "--out", graph]
    )
    ref_root = os.path.join(args.workdir, "svc-ref")
    drill_root = os.path.join(args.workdir, "svc-drill")
    daemon = None
    try:
        # ----- 1. the uninterrupted reference run --------------------
        daemon = spawn_daemon([graph, "--service-root", ref_root])
        host, port = daemon.wait_serving_line()
        health = wait_until_ready(host, port, timeout=300)
        fp_gen0 = health["fingerprint"]
        num_nodes = int(health["num_nodes"])
        bridge = (num_nodes - 1, 0)
        with ServiceClient(host, port, timeout=30.0) as client:
            assert client.ingest([bridge])["rebuild"]["scheduled"]
        health = poll_health(
            host, port,
            lambda h: h["state"] == "serving" and h["generation"] == 1,
        )
        fp_gen1 = health["fingerprint"]
        with ServiceClient(host, port, timeout=30.0) as client:
            ref_reach = client.reach(bridge[0], bridge[1])
            client.shutdown()
        check(daemon.wait_exit() == 0, "reference run exits cleanly")
        check(ref_reach, "reference reaches across the ingested edge")

        # ----- 2. SIGKILL while BUILDING -----------------------------
        daemon = spawn_daemon(
            [graph, "--service-root", drill_root,
             "--fault-plan", SLOW_PLAN]
        )
        host, port = daemon.wait_serving_line()
        health = poll_health(
            host, port, lambda h: h["state"] == "building", timeout=60
        )
        time.sleep(0.6)  # let it pass at least one scan checkpoint
        code = daemon.sigkill()
        check(code != 0, "daemon SIGKILLed while BUILDING", code)

        # ----- 3. restart resumes generation 0 -----------------------
        daemon = spawn_daemon([graph, "--service-root", drill_root])
        host, port = daemon.wait_serving_line()
        health = wait_until_ready(host, port, timeout=300)
        check(
            health["generation"] == 0
            and health["fingerprint"] == fp_gen0,
            "resumed build matches the uninterrupted fingerprint",
            health,
        )

        # ----- 4. SIGKILL while rebuilding ---------------------------
        # Same slow plan for the next generation: restart with it so
        # the gen-1 rebuild window is wide, then ingest and kill.
        with ServiceClient(host, port, timeout=30.0) as client:
            client.shutdown()
        check(daemon.wait_exit() == 0, "drill daemon restarts cleanly")
        daemon = spawn_daemon(
            [graph, "--service-root", drill_root,
             "--fault-plan", SLOW_PLAN]
        )
        host, port = daemon.wait_serving_line()
        wait_until_ready(host, port, timeout=300)
        with ServiceClient(host, port, timeout=30.0) as client:
            assert client.ingest([bridge])["rebuild"]["scheduled"]
            health = client.health()
        check(
            health["state"] == "degraded_stale",
            "rebuild serves stale while in flight",
            health,
        )
        time.sleep(0.6)
        code = daemon.sigkill()
        check(code != 0, "daemon SIGKILLed while rebuilding", code)

        # ----- 5. restart resumes generation 1 -----------------------
        daemon = spawn_daemon([graph, "--service-root", drill_root])
        host, port = daemon.wait_serving_line()
        first = wait_until_ready(
            host, port, timeout=300,
            accept_states=("serving", "degraded_stale"),
        )
        check(
            first["stale"] or first["generation"] == 1,
            "restart serves last-good snapshot while resuming",
            first,
        )
        health = poll_health(
            host, port,
            lambda h: h["state"] == "serving" and h["generation"] == 1,
        )
        check(
            health["fingerprint"] == fp_gen1,
            "resumed rebuild matches the uninterrupted fingerprint",
            health,
        )
        with ServiceClient(host, port, timeout=30.0) as client:
            check(
                client.reach(bridge[0], bridge[1]) == ref_reach,
                "answers match the reference after crash-resume",
            )
            client.shutdown()
        check(daemon.wait_exit() == 0, "final daemon exits cleanly")
    except CheckFailure as failure:
        print(f"  FAIL  {failure}", file=sys.stderr)
        if daemon is not None:
            print(daemon.output(), file=sys.stderr)
            daemon.proc.kill()
        return 1
    except Exception:
        if daemon is not None:
            print(daemon.output(), file=sys.stderr)
            daemon.proc.kill()
        raise
    print("service chaos drill: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
