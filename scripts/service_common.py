"""Shared plumbing for the service smoke / chaos drill scripts.

Both scripts drive the daemon as a real subprocess (``python -m
repro.cli serve``) and talk to it over the wire, so they exercise the
exact surface an operator gets: the stable ``serving <graph> on
<host>:<port>`` stdout line, the line-framed JSON protocol, and
SIGKILL-then-restart recovery.
"""

from __future__ import annotations

import os
import queue
import re
import subprocess
import sys
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

# The serve CLI promises to keep this line's shape stable.
SERVING_RE = re.compile(r"^serving .+ on ([\w.\-]+):(\d+)\s*$")


class Daemon:
    """A ``repro-scc serve`` subprocess plus its drained stdout."""

    def __init__(self, proc: subprocess.Popen) -> None:
        self.proc = proc
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self.lines: List[str] = []
        self._queue: "queue.Queue[Optional[str]]" = queue.Queue()
        self._reader = threading.Thread(target=self._drain, daemon=True)
        self._reader.start()

    def _drain(self) -> None:
        assert self.proc.stdout is not None
        for line in self.proc.stdout:
            self._queue.put(line.rstrip("\n"))
        self._queue.put(None)

    def wait_serving_line(self, timeout: float = 180.0) -> Tuple[str, int]:
        """Block until the daemon prints its address line."""
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    "daemon never printed its serving line; output so far:\n"
                    + "\n".join(self.lines)
                )
            try:
                line = self._queue.get(timeout=min(remaining, 1.0))
            except queue.Empty:
                if self.proc.poll() is not None:
                    raise RuntimeError(
                        f"daemon exited early (code {self.proc.returncode}):\n"
                        + "\n".join(self.lines)
                    )
                continue
            if line is None:
                raise RuntimeError(
                    f"daemon closed stdout (code {self.proc.poll()}):\n"
                    + "\n".join(self.lines)
                )
            self.lines.append(line)
            match = SERVING_RE.match(line)
            if match:
                self.host, self.port = match.group(1), int(match.group(2))
                return self.host, self.port

    def sigkill(self) -> int:
        """SIGKILL the daemon and return the (negative) exit code."""
        self.proc.kill()
        return self.proc.wait(timeout=60)

    def wait_exit(self, timeout: float = 60.0) -> int:
        return self.proc.wait(timeout=timeout)

    def output(self) -> str:
        while True:
            try:
                line = self._queue.get_nowait()
            except queue.Empty:
                break
            if line is not None:
                self.lines.append(line)
        return "\n".join(self.lines)


def spawn_daemon(args: Sequence[str]) -> Daemon:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    return Daemon(proc)


def run_cli(args: Sequence[str]) -> None:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    subprocess.run(
        [sys.executable, "-m", "repro.cli", *args], check=True, env=env
    )


def poll_health(
    host: str,
    port: int,
    want: "callable",
    timeout: float = 300.0,
    interval: float = 0.1,
) -> Dict[str, object]:
    """Poll the health op until ``want(payload)`` is true."""
    from repro.service.client import ServiceClient

    deadline = time.monotonic() + timeout
    last: Dict[str, object] = {}
    while time.monotonic() < deadline:
        try:
            with ServiceClient(host, port, timeout=10.0) as client:
                last = client.health()
        except (ConnectionError, OSError):
            time.sleep(interval)
            continue
        if want(last):
            return last
        time.sleep(interval)
    raise TimeoutError(f"health condition never met; last payload: {last}")


class CheckFailure(AssertionError):
    pass


def check(condition: bool, label: str, detail: object = "") -> None:
    if condition:
        print(f"  PASS  {label}")
    else:
        raise CheckFailure(f"{label}: {detail}")
