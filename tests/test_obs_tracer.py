"""Tracer core: span nesting, I/O deltas, counters, attribution."""

from __future__ import annotations

import numpy as np
import pytest

from repro.io.counter import IOCounter, IOStats
from repro.io.edgefile import EdgeFile
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer, iteration_io

from tests.conftest import SMALL_BLOCK


def _read_all(edge_file):
    for _ in edge_file.scan():
        pass


class TestSpanNesting:
    def test_spans_record_parentage_and_depth(self):
        tracer = Tracer()
        with tracer.span("run"):
            with tracer.span("phase"):
                with tracer.span("scan", iteration=1):
                    pass
            with tracer.span("phase2"):
                pass
        by_name = {span.name: span for span in tracer.spans}
        assert by_name["run"].parent_id is None
        assert by_name["run"].depth == 0
        assert by_name["phase"].parent_id == by_name["run"].span_id
        assert by_name["phase"].depth == 1
        assert by_name["scan"].parent_id == by_name["phase"].span_id
        assert by_name["scan"].depth == 2
        assert by_name["phase2"].parent_id == by_name["run"].span_id

    def test_spans_emitted_in_exit_order(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [span.name for span in tracer.spans] == ["inner", "outer"]

    def test_span_ids_are_unique(self):
        tracer = Tracer()
        for _ in range(5):
            with tracer.span("s"):
                pass
        ids = [span.span_id for span in tracer.spans]
        assert len(set(ids)) == len(ids)

    def test_attributes_are_kept(self):
        tracer = Tracer()
        with tracer.span("scan", iteration=3, kind="edge"):
            pass
        assert tracer.spans[0].attributes == {"iteration": 3, "kind": "edge"}

    def test_exception_still_seals_span(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        assert len(tracer.spans) == 1
        assert tracer.spans[0].name == "doomed"

    def test_sink_receives_every_span(self):
        seen = []
        tracer = Tracer(sink=seen.append)
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        assert [span.name for span in seen] == ["b", "a"]


class TestIODeltas:
    def test_span_io_is_counter_delta(self, tmp_path, counter):
        edges = np.arange(40, dtype=np.int64).reshape(-1, 2)
        edge_file = EdgeFile.from_array(
            str(tmp_path / "e.bin"), edges, counter=counter,
            block_size=SMALL_BLOCK,
        )
        tracer = Tracer()
        with tracer.attach(counter):
            with tracer.span("scan"):
                _read_all(edge_file)
        span = tracer.spans[0]
        assert span.io.total == edge_file.device.num_blocks
        assert span.io.bytes_read > 0

    def test_parent_io_includes_children(self, tmp_path, counter):
        edges = np.arange(40, dtype=np.int64).reshape(-1, 2)
        edge_file = EdgeFile.from_array(
            str(tmp_path / "e.bin"), edges, counter=counter,
            block_size=SMALL_BLOCK,
        )
        tracer = Tracer()
        with tracer.attach(counter):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    _read_all(edge_file)
                _read_all(edge_file)
        by_name = {span.name: span for span in tracer.spans}
        assert by_name["outer"].io.total == 2 * by_name["inner"].io.total

    def test_unattached_tracer_records_zero_io(self, tmp_path, counter):
        edges = np.arange(20, dtype=np.int64).reshape(-1, 2)
        edge_file = EdgeFile.from_array(
            str(tmp_path / "e.bin"), edges, counter=counter,
            block_size=SMALL_BLOCK,
        )
        tracer = Tracer()
        with tracer.span("scan"):
            _read_all(edge_file)
        assert tracer.spans[0].io == IOStats()

    def test_attach_restores_previous_observer(self, counter):
        events = []
        counter.observer = lambda *args: events.append(args)
        tracer = Tracer()
        with tracer.attach(counter):
            assert counter.observer == tracer._observe
        assert counter.observer is not None
        counter.record_read(1, 10, sequential=True)
        assert len(events) == 1


class TestFileAttribution:
    def test_files_keyed_by_device_path(self, tmp_path, counter):
        edges = np.arange(40, dtype=np.int64).reshape(-1, 2)
        path = str(tmp_path / "attrib.bin")
        edge_file = EdgeFile.from_array(
            path, edges, counter=counter, block_size=SMALL_BLOCK
        )
        tracer = Tracer()
        with tracer.attach(counter):
            with tracer.span("scan"):
                _read_all(edge_file)
        files = tracer.spans[0].files
        assert list(files) == [path]
        assert files[path].total == tracer.spans[0].io.total

    def test_files_roll_up_to_parent(self, tmp_path, counter):
        edges = np.arange(40, dtype=np.int64).reshape(-1, 2)
        a = EdgeFile.from_array(
            str(tmp_path / "a.bin"), edges, counter=counter,
            block_size=SMALL_BLOCK,
        )
        b = EdgeFile.from_array(
            str(tmp_path / "b.bin"), edges, counter=counter,
            block_size=SMALL_BLOCK,
        )
        tracer = Tracer()
        with tracer.attach(counter):
            with tracer.span("outer"):
                with tracer.span("first"):
                    _read_all(a)
                with tracer.span("second"):
                    _read_all(b)
        outer = [s for s in tracer.spans if s.name == "outer"][0]
        assert set(outer.files) == {a.device.path, b.device.path}
        total = sum(stats.total for stats in outer.files.values())
        assert total == outer.io.total

    def test_unattributed_io_gets_placeholder_key(self, counter):
        tracer = Tracer()
        with tracer.attach(counter):
            with tracer.span("s"):
                counter.record_read(1, 64, sequential=True)
        assert list(tracer.spans[0].files) == ["<unattributed>"]


class TestCounters:
    def test_add_accumulates_on_innermost_span(self):
        tracer = Tracer()
        with tracer.span("outer"):
            tracer.add("events", 2)
            with tracer.span("inner"):
                tracer.add("events", 5)
            tracer.add("events")
        by_name = {span.name: span for span in tracer.spans}
        assert by_name["inner"].counters == {"events": 5}
        assert by_name["outer"].counters == {"events": 3}

    def test_add_without_open_span_is_ignored(self):
        tracer = Tracer()
        tracer.add("orphan", 7)
        assert tracer.spans == []

    def test_zero_valued_add_leaves_no_counter(self):
        tracer = Tracer()
        with tracer.span("s"):
            tracer.add("nothing", 0)
        assert tracer.spans[0].counters == {}


class TestNullTracer:
    def test_is_disabled(self):
        assert NULL_TRACER.enabled is False
        assert NullTracer().enabled is False
        assert Tracer.enabled is True

    def test_span_yields_none_and_records_nothing(self):
        with NULL_TRACER.span("s", iteration=1) as span:
            assert span is None
        assert NULL_TRACER.spans == []

    def test_attach_never_installs_observer(self, counter):
        with NULL_TRACER.attach(counter):
            assert counter.observer is None

    def test_add_is_noop(self):
        NULL_TRACER.add("x", 10)
        assert NULL_TRACER.spans == []

    def test_span_handles_are_shared(self):
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")


class TestIterationIO:
    def test_outermost_iteration_span_wins(self):
        tracer = Tracer()
        with tracer.span("iteration", iteration=1):
            with tracer.span("edge-scan", iteration=1):
                pass
        spans = tracer.spans
        inner = spans[0]
        outer = spans[1]
        inner.io = IOStats(seq_reads=5, bytes_read=320)
        outer.io = IOStats(seq_reads=9, bytes_read=576)
        per_iter = iteration_io(spans)
        assert per_iter == {1: outer.io}

    def test_sibling_iteration_spans_sum(self):
        tracer = Tracer()
        with tracer.span("run"):
            with tracer.span("scan", iteration=2):
                pass
            with tracer.span("rewrite", iteration=2):
                pass
        scan, rewrite, _run = tracer.spans
        scan.io = IOStats(seq_reads=3)
        rewrite.io = IOStats(seq_writes=4)
        per_iter = iteration_io(tracer.spans)
        assert per_iter[2].seq_reads == 3
        assert per_iter[2].seq_writes == 4

    def test_untagged_spans_do_not_contribute(self):
        tracer = Tracer()
        with tracer.span("run"):
            pass
        assert iteration_io(tracer.spans) == {}

    def test_result_is_a_copy(self):
        tracer = Tracer()
        with tracer.span("scan", iteration=1):
            pass
        tracer.spans[0].io = IOStats(seq_reads=1)
        per_iter = iteration_io(tracer.spans)
        per_iter[1].seq_reads = 99
        assert tracer.spans[0].io.seq_reads == 1
