"""Tier-1 tests for reaching defs, locksets, and the program index."""

from __future__ import annotations

import ast

from repro.analysis_static.dataflow import (
    ProgramIndex,
    assigned_names,
    held_locksets,
    reaching_definitions,
)
from tests.test_analysis_cfg import cfg_of


class TestAssignedNames:
    def test_covers_every_binding_form(self):
        source = (
            "a = 1\n"
            "b += 1\n"
            "c: int = 2\n"
            "for d in xs:\n"
            "    pass\n"
            "with open_thing() as e:\n"
            "    pass\n"
            "try:\n"
            "    pass\n"
            "except ValueError as f:\n"
            "    pass\n"
            "g, (h, i) = 1, (2, 3)\n"
            "if (j := 4):\n"
            "    pass\n"
        )
        names = assigned_names(ast.parse(source))
        assert names >= set("abcdefghij")

    def test_attribute_stores_are_not_names(self):
        assert assigned_names(ast.parse("self.x = 1")) == set()


class TestReachingDefinitions:
    def test_loop_body_definition_reaches_the_head(self):
        source = (
            "def f(n):\n"
            "    pending = n\n"
            "    while pending:\n"
            "        pending = step(pending)\n"
        )
        cfg = cfg_of(source)
        loop = next(
            node for node in ast.walk(cfg.func) if isinstance(node, ast.While)
        )
        head = cfg.loop_heads[id(loop)]
        members = cfg.loop_blocks[id(loop)]
        reaching = reaching_definitions(cfg)
        sources = {
            src for name, src in reaching[head] if name == "pending"
        }
        assert sources & members, "body def must reach the loop head"

    def test_redefinition_kills_within_a_block(self):
        source = "def f():\n    a = 1\n    a = 2\n    use(a)\n"
        cfg = cfg_of(source)
        reaching = reaching_definitions(cfg)
        # The single straight-line block defines `a` once at OUT; the
        # exit's IN set carries exactly one defining block for `a`.
        exit_in = reaching[cfg.exit]
        assert len({src for name, src in exit_in if name == "a"}) == 1


class TestHeldLocksets:
    def test_with_region_is_held_inside_only(self):
        source = (
            "def f(self):\n"
            "    with self._lock:\n"
            "        a = compute()\n"
            "    b = compute()\n"
        )
        cfg = cfg_of(source)
        locksets = held_locksets(cfg)
        held_somewhere = [
            index for index, held in locksets.items() if "self._lock" in held
        ]
        assert held_somewhere
        tail = next(
            node
            for node in ast.walk(cfg.func)
            if isinstance(node, ast.Assign)
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == "b"
        )
        assert "self._lock" not in locksets[cfg.block_of(tail)]

    def test_acquire_release_transfer(self):
        source = (
            "def f(self):\n"
            "    self._lock.acquire()\n"
            "    if flag():\n"
            "        a = 1\n"
            "    self._lock.release()\n"
        )
        cfg = cfg_of(source)
        locksets = held_locksets(cfg)
        assign = next(
            node
            for node in ast.walk(cfg.func)
            if isinstance(node, ast.Assign)
        )
        assert "self._lock" in locksets[cfg.block_of(assign)]

    def test_join_is_must_intersection(self):
        source = (
            "def f(self, x):\n"
            "    if x:\n"
            "        self._lock.acquire()\n"
            "    touch(self)\n"
        )
        cfg = cfg_of(source)
        locksets = held_locksets(cfg)
        call = next(
            node
            for node in ast.walk(cfg.func)
            if isinstance(node, ast.Call)
            and getattr(node.func, "id", "") == "touch"
        )
        assert "self._lock" not in locksets[cfg.block_of(call)]


def index_of(*module_sources):
    """Build a ProgramIndex from ``(relpath, source)`` pairs."""
    return ProgramIndex(
        (relpath, ast.parse(source)) for relpath, source in module_sources
    )


class TestProgramIndex:
    def test_resolution_prefers_same_class_then_module(self):
        shared = (
            "class A:\n"
            "    def helper(self):\n"
            "        pass\n"
            "    def run(self):\n"
            "        self.helper()\n"
            "def helper():\n"
            "    pass\n"
        )
        other = "def helper():\n    pass\n"
        index = index_of(
            ("repro/core/a.py", shared), ("repro/core/b.py", other)
        )
        run = next(f for f in index.functions if f.qualname == "A.run")
        resolved = index.resolve("helper", run)
        assert [f.qualname for f in resolved] == ["A.helper"]

    def test_resolution_falls_back_to_any_module(self):
        index = index_of(
            ("repro/core/a.py", "def caller():\n    helper()\n"),
            ("repro/core/b.py", "def helper():\n    pass\n"),
        )
        caller = next(f for f in index.functions if f.qualname == "caller")
        assert [f.relpath for f in index.resolve("helper", caller)] == [
            "repro/core/b.py"
        ]

    def test_scan_summary_is_transitive(self):
        source = (
            "def leaf(edge_file):\n"
            "    for batch in edge_file.scan():\n"
            "        pass\n"
            "def middle(edge_file):\n"
            "    leaf(edge_file)\n"
            "def top(edge_file):\n"
            "    middle(edge_file)\n"
            "def bystander():\n"
            "    pass\n"
        )
        index = index_of(("repro/core/a.py", source))
        by_name = {f.qualname: f for f in index.functions}
        assert index.scans_edges(by_name["leaf"])
        assert index.scans_edges(by_name["middle"])
        assert index.scans_edges(by_name["top"])
        assert not index.scans_edges(by_name["bystander"])

    def test_call_scans_on_direct_and_resolved_calls(self):
        source = (
            "def helper(edge_file):\n"
            "    for batch in edge_file.scan():\n"
            "        pass\n"
            "def caller(edge_file):\n"
            "    helper(edge_file)\n"
            "    edge_file.scan()\n"
            "    plain()\n"
            "def plain():\n"
            "    pass\n"
        )
        index = index_of(("repro/core/a.py", source))
        caller = next(f for f in index.functions if f.qualname == "caller")
        calls = {
            getattr(node.func, "id", getattr(node.func, "attr", "")): node
            for node in ast.walk(caller.node)
            if isinstance(node, ast.Call)
        }
        assert index.call_scans(calls["helper"], caller)
        assert index.call_scans(calls["scan"], caller)
        assert not index.call_scans(calls["plain"], caller)
