"""Property tests for the epoch-cached Euler-tour ancestor oracle.

The oracle's contract has two halves, both exercised here against the
walk-based ``is_ancestor`` as ground truth:

* **after a rebuild** the interval test agrees with the walk on every
  live pair (and is deterministically False for dead nodes);
* **between rebuilds** the snapshot stays valid for every pair of nodes
  the host tree left *clean* — that is the invariant the vector kernels
  rely on when they serve stale-but-clean verdicts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.constants import VIRTUAL_ROOT
from repro.core.dfs_scc import _DFSTree
from repro.kernels import AncestorOracle
from repro.spanning.tree import ContractibleTree


def exhaustive_check(oracle: AncestorOracle, tree: ContractibleTree) -> None:
    """Oracle == walk on every ordered live pair; dead pairs are False."""
    nodes = list(range(tree.n))
    live = tree.live
    for a in nodes:
        for d in nodes:
            got = oracle.is_ancestor(a, d)
            if live[a] and live[d]:
                assert got == tree.is_ancestor(a, d), (a, d)
            else:
                assert not got, f"dead pair ({a}, {d}) answered True"


def random_mutation(rng: np.random.Generator, tree: ContractibleTree) -> None:
    """Apply one random structural edit drawn from the kernel op set."""
    live = np.flatnonzero(tree.live)
    if live.shape[0] < 2:
        return
    op = rng.integers(0, 3)
    u, v = (int(x) for x in rng.choice(live, size=2, replace=False))
    if op == 0:
        # contract_path needs an ancestor pair; promote v to an ancestor
        # of u when it is one, else fall through to a pushdown shape.
        if tree.is_ancestor(v, u):
            tree.contract_path(u, v)
        elif not tree.is_ancestor(u, v):
            tree.pushdown(u, v)
    elif op == 1:
        if not tree.is_ancestor(u, v) and not tree.is_ancestor(v, u):
            tree.pushdown(u, v)
    else:
        tree.reject(u)


class TestRebuildAgreement:
    """After a rebuild the interval test is exact."""

    def test_initial_star(self):
        tree = ContractibleTree(8)
        oracle = AncestorOracle(tree.n)
        assert oracle.refresh(tree)  # first refresh always rebuilds
        exhaustive_check(oracle, tree)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_after_random_mutations(self, seed):
        rng = np.random.default_rng(seed)
        tree = ContractibleTree(24)
        oracle = AncestorOracle(tree.n)
        for _ in range(40):
            random_mutation(rng, tree)
        oracle._rebuild(tree)  # bypass the amortisation policy
        exhaustive_check(oracle, tree)

    def test_ancestor_or_equal_semantics(self):
        tree = ContractibleTree(4)
        tree.reparent(1, 0)
        tree.reparent(2, 1)
        oracle = AncestorOracle(tree.n)
        oracle.refresh(tree)
        assert oracle.is_ancestor(1, 1)  # equal counts, like the walk
        assert oracle.is_ancestor(0, 2)
        assert not oracle.is_ancestor(2, 0)
        many = oracle.is_ancestor_many(
            np.array([0, 2, 3]), np.array([2, 0, 3])
        )
        assert many.tolist() == [True, False, True]


class TestCleanPairValidity:
    """Stale snapshots stay exact on pairs the tree left clean."""

    @pytest.mark.parametrize("seed", [10, 11, 12, 13, 14])
    def test_clean_pairs_survive_mutations(self, seed):
        rng = np.random.default_rng(seed)
        tree = ContractibleTree(24)
        oracle = AncestorOracle(tree.n)
        oracle.refresh(tree)
        snapshot = {
            (a, d): oracle.is_ancestor(a, d)
            for a in range(tree.n)
            for d in range(tree.n)
        }
        for _ in range(25):
            random_mutation(rng, tree)
        assert tree.track_dirty
        for (a, d), verdict in snapshot.items():
            if tree.dirty[a] or tree.dirty[d]:
                continue  # the kernels fall back to the walk here
            assert verdict == oracle.is_ancestor(a, d)  # labels untouched
            if tree.live[a] and tree.live[d]:
                assert verdict == tree.is_ancestor(a, d), (a, d)
            else:
                # Liveness changes mark a node dirty, so a clean node
                # that was live at snapshot time is live now.
                assert not verdict

    def test_contract_path_keeps_representative_clean(self):
        tree = ContractibleTree(6)
        tree.reparent(1, 0)
        tree.reparent(2, 1)
        oracle = AncestorOracle(tree.n)
        oracle.refresh(tree)
        tree.contract_path(2, 0)  # absorb 1, 2 into 0
        assert not tree.dirty[0]
        assert tree.dirty[1] and tree.dirty[2]


class TestRefreshPolicy:
    """Epoch fast path and the dirty-population rebuild threshold."""

    def test_same_epoch_is_a_noop(self):
        tree = ContractibleTree(4)
        oracle = AncestorOracle(tree.n)
        assert oracle.refresh(tree)
        assert not oracle.refresh(tree)
        assert oracle.rebuilds == 1

    def test_first_refresh_enables_dirty_tracking(self):
        tree = ContractibleTree(4)
        assert not tree.track_dirty
        AncestorOracle(tree.n).refresh(tree)
        assert tree.track_dirty
        assert not tree.dirty.any()

    def test_small_dirt_defers_rebuild(self):
        tree = ContractibleTree(8)
        oracle = AncestorOracle(tree.n)
        oracle.refresh(tree)
        tree.pushdown(1, 2)  # one dirty node << rebuild_min_dirty
        assert not oracle.refresh(tree)
        assert oracle.rebuilds == 1
        assert oracle.built_epoch != tree.epoch  # stale by design

    def test_large_dirt_triggers_rebuild(self):
        tree = ContractibleTree(8)
        oracle = AncestorOracle(tree.n)
        oracle.rebuild_min_dirty = 1
        oracle.rebuild_fraction = 0.0
        oracle.refresh(tree)
        tree.pushdown(1, 2)
        tree.pushdown(3, 4)
        assert oracle.refresh(tree)
        assert oracle.rebuilds == 2
        assert not tree.dirty.any()  # rebuild resets the bitmap
        exhaustive_check(oracle, tree)


class TestDFSTreeOracle:
    """The DFS forest exposes the same snapshot contract."""

    def test_oracle_matches_walk_after_reparents(self):
        order = np.arange(10)
        tree = _DFSTree(order)
        rng = np.random.default_rng(7)
        for _ in range(15):
            u, v = (int(x) for x in rng.choice(10, size=2, replace=False))
            if not tree.is_ancestor(v, u) and not tree.is_ancestor(u, v):
                tree.reparent(v, u)
        oracle = AncestorOracle(tree.n)
        oracle._rebuild(tree)
        for a in range(tree.n):
            for d in range(tree.n):
                assert oracle.is_ancestor(a, d) == tree.is_ancestor(a, d)

    def test_reparent_leaves_new_parent_clean(self):
        tree = _DFSTree(np.arange(5))
        AncestorOracle(tree.n).refresh(tree)
        tree.reparent(3, 1)
        assert tree.dirty[3]
        assert not tree.dirty[1]
        assert tree.epoch == 1


class TestVirtualRootEncoding:
    def test_virtual_root_never_queried(self):
        # The oracle indexes arrays by node id; VIRTUAL_ROOT (-1) must
        # never reach it.  Guard the constant the encoding relies on.
        assert VIRTUAL_ROOT == -1
