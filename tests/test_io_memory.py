"""Unit tests for the semi-external memory model."""

import pytest

from repro.constants import DEFAULT_BLOCK_SIZE, EDGE_BYTES
from repro.exceptions import MemoryBudgetError
from repro.io.memory import MemoryModel


class TestDefaults:
    def test_paper_default_capacity(self):
        model = MemoryModel(num_nodes=1000)
        assert model.capacity == 4 * 3 * 1000 + DEFAULT_BLOCK_SIZE

    def test_explicit_capacity_respected(self):
        model = MemoryModel(num_nodes=10, capacity=12345)
        assert model.capacity == 12345

    def test_negative_nodes_rejected(self):
        with pytest.raises(ValueError):
            MemoryModel(num_nodes=-1)


class TestNodeArrays:
    def test_three_arrays_fit_by_default(self):
        model = MemoryModel(num_nodes=1_000)
        model.require_node_arrays(3)  # BR+-Tree fits by construction

    def test_four_arrays_overflow_default(self):
        model = MemoryModel(num_nodes=1_000_000)
        with pytest.raises(MemoryBudgetError):
            model.require_node_arrays(4)

    def test_live_nodes_shrink_requirement(self):
        model = MemoryModel(num_nodes=1_000_000)
        model.require_node_arrays(4, live_nodes=100)  # tiny live set fits


class TestEdgeBudget:
    def test_budget_shrinks_with_resident_arrays(self):
        model = MemoryModel(num_nodes=1000)
        assert model.edge_budget_bytes(2) < model.edge_budget_bytes(1)

    def test_budget_grows_as_nodes_are_freed(self):
        """The Section 7.4 feedback loop: fewer live nodes, bigger batches."""
        model = MemoryModel(num_nodes=100_000)
        full = model.edges_per_batch(2, live_nodes=100_000)
        reduced = model.edges_per_batch(2, live_nodes=50_000)
        assert reduced > full

    def test_budget_never_below_one_block(self):
        model = MemoryModel(num_nodes=10, capacity=100, block_size=64)
        assert model.edge_budget_bytes(3) == 64
        assert model.blocks_per_batch(3) == 1
        assert model.edges_per_batch(3) == 64 // EDGE_BYTES


class TestChargeTracking:
    def test_charge_and_release(self):
        model = MemoryModel(num_nodes=10, capacity=100)
        model.charge(60)
        assert model.charged == 60
        model.release(10)
        assert model.charged == 50

    def test_overflow_raises(self):
        model = MemoryModel(num_nodes=10, capacity=100)
        model.charge(90)
        with pytest.raises(MemoryBudgetError):
            model.charge(11)

    def test_release_validation(self):
        model = MemoryModel(num_nodes=10, capacity=100)
        with pytest.raises(ValueError):
            model.release(1)
