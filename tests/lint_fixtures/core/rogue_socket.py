"""Deliberately broken lint fixture: socket use outside its homes (THR004).

An algorithm module that opens its own control socket.  Long-lived
concurrency — listeners, worker threads — belongs to ``repro/service/``
(the query daemon) and ``repro/obs/`` (the exposition plane), where
shutdown and back-pressure have owners; a socket inside ``repro/core/``
is an unowned side channel — the containment half of THR004.
"""

import socket


def open_control_channel(port):
    """Hand-rolled control listener inside an algorithm package."""
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.bind(("127.0.0.1", port))
    listener.listen(1)
    return listener
