"""Deliberately broken lint fixture: nested edge scan (SCAN002).

The inner scan restarts a full pass over ``other_file`` for every
batch of the outer scan — the O(|E|^2/B) shape the paper's
semi-external algorithms exist to avoid.
"""


def cross_pair_count(edge_file, other_file, kernel):
    """Count cross pairs by rescanning ``other_file`` per outer batch."""
    total = 0
    for batch in edge_file.scan():
        for other in other_file.scan():
            total += kernel.count_pairs(batch, other)
    return total
