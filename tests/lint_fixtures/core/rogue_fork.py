"""Deliberately broken lint fixture: ad-hoc worker fork (THR003).

An algorithm module that forks its own helper process instead of going
through ``repro.parallel``.  The pool exists precisely so that worker
assignment is deterministic and crashes are contained into counted
fallbacks; a bare ``multiprocessing`` import anywhere else is an
unaccounted execution side channel — the containment half of THR003.
"""

import multiprocessing


def classify_in_background(batch, queue):
    """Ship one batch to a hand-rolled worker process."""
    proc = multiprocessing.Process(target=queue.put, args=(batch,))
    proc.start()
    return proc
