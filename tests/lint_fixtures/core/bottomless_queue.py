"""Deliberately broken lint fixture: unbounded queue (THR004).

A producer/consumer hand-off with no capacity: under overload the
backlog grows without limit until the process OOMs, invisibly to any
admission or shedding layer.  Every queue must be constructed with an
explicit ``maxsize`` so overload surfaces as back-pressure — the
bounds half of THR004.
"""

import queue


def make_work_buffer():
    """An unbounded hand-off buffer (the defect)."""
    return queue.Queue()
