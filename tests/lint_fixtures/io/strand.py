"""Deliberately broken lint fixture: strandable staging file (IO003).

``save_snapshot`` stages bytes next to the target but can leave the
staging file behind: the early ``return False`` skips both
``replace_file`` and ``abort_replace``, and an exception from either
device call propagates with no cleanup.
"""

from repro.io.atomic import replace_file


def save_snapshot(device, payload, target):
    """Stage ``payload`` and swap it over ``target`` — leakily."""
    staging = target + ".staging"
    device.write(staging, payload)
    if not device.verify(staging):
        return False
    replace_file(staging, target)
    return True
