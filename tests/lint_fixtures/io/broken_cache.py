"""Deliberately broken lint fixture: unlocked shared write (THR001).

``reset`` mutates ``_entries`` without taking ``_lock`` even though
every other access holds it — the race the prefetch daemon thread
makes real.
"""

import threading


class BrokenCache:
    """A shared cache whose reset path skips the lock."""

    def __init__(self):
        self._lock = threading.Lock()
        self._entries = {}

    def put(self, key, value):
        """Store a payload under the lock."""
        with self._lock:
            self._entries[key] = value

    def get(self, key):
        """Look up a payload under the lock."""
        with self._lock:
            return self._entries.get(key)

    def reset(self):
        """Drop every entry — without the lock (the seeded bug)."""
        self._entries.clear()
