"""Deliberately broken lint fixture: unlink-less shared memory (THR003).

Creating a ``SharedMemory`` segment makes a kernel object that outlives
the process unless somebody unlinks it.  This arena closes its handle
but never unlinks on a ``finally`` path, so every crashed run leaks the
``/dev/shm`` segment — the lifetime half of THR003 (the containment
half does not fire here: this directory mirrors ``repro/parallel/``,
the one package allowed to use ``multiprocessing``).
"""

from multiprocessing import shared_memory


class LeakyArena:
    """A snapshot arena that forgets its segment on teardown."""

    def __init__(self, size):
        self.shm = shared_memory.SharedMemory(create=True, size=size)

    def close(self):
        """Detach — but never unlink, so the segment outlives the run."""
        self.shm.close()
