"""Deliberately broken lint fixture: raw metrics sink (IO001).

A telemetry sink that opens its output file directly.  Only
``repro/obs/sampler.py`` (and the trace writer) are allowlisted for
IO001 — any other module persisting metrics must route through
``repro.io`` or earn its own justified allowlist entry, otherwise its
writes slip past the counted-I/O accounting the metrics describe.
"""

import json


def dump_snapshot(snapshot, path):
    """Persist one metrics snapshot — behind the counter's back."""
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(snapshot) + "\n")
