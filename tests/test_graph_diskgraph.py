"""Unit tests for the semi-external graph view."""

import os

import numpy as np

from repro.graph.digraph import Digraph
from repro.graph.diskgraph import DiskGraph
from repro.io.counter import IOCounter

from tests.conftest import SMALL_BLOCK


def make_disk_graph(tmp_path, n=20, m=80, seed=0, counter=None):
    rng = np.random.default_rng(seed)
    g = Digraph(n, rng.integers(0, n, size=(m, 2)))
    disk = DiskGraph.from_digraph(
        g, str(tmp_path / "g.bin"), counter=counter, block_size=SMALL_BLOCK
    )
    return g, disk


class TestRoundtrip:
    def test_to_digraph_matches_source(self, tmp_path):
        g, disk = make_disk_graph(tmp_path)
        assert disk.to_digraph() == g
        disk.unlink()

    def test_counts(self, tmp_path):
        g, disk = make_disk_graph(tmp_path, n=7, m=13)
        assert disk.num_nodes == 7
        assert disk.num_edges == 13
        disk.unlink()

    def test_scan_edges_covers_everything(self, tmp_path):
        g, disk = make_disk_graph(tmp_path, m=50)
        total = sum(len(batch) for batch in disk.scan_edges())
        assert total == 50
        disk.unlink()


class TestReversal:
    def test_reversed_graph(self, tmp_path):
        g, disk = make_disk_graph(tmp_path)
        rev = disk.reversed_graph()
        assert rev.to_digraph() == g.reverse()
        rev.unlink()
        disk.unlink()

    def test_reversal_counts_ios(self, tmp_path):
        counter = IOCounter()
        g, disk = make_disk_graph(tmp_path, counter=counter)
        before = counter.snapshot()
        rev = disk.reversed_graph()
        delta = counter.since(before)
        assert delta.reads > 0 and delta.writes > 0
        rev.unlink()
        disk.unlink()


class TestLifecycle:
    def test_unlink_removes_files(self, tmp_path):
        g, disk = make_disk_graph(tmp_path)
        path = disk.edge_file.path
        disk.unlink()
        assert not os.path.exists(path)

    def test_scratch_path_is_sibling(self, tmp_path):
        g, disk = make_disk_graph(tmp_path)
        scratch = disk.scratch_path("work")
        assert scratch.startswith(disk.edge_file.path)
        disk.unlink()

    def test_context_manager(self, tmp_path):
        g, disk = make_disk_graph(tmp_path)
        with disk:
            pass
        assert disk.edge_file.device._closed
