"""Property test: update_drank equals brute-force Rset reachability.

The paper defines ``drank(u, T)`` as the minimum depth over
``Rset(u, G, T)`` — everything ``u`` can reach inside the BR+-Tree by
walking tree edges downwards and stored backward links upwards,
repeatedly.  ``BRPlusTree.update_drank`` computes this closure in two
passes; here it is checked against a literal BFS over the
"tree-edges + backward-links" graph on randomly built trees.
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis_static.contracts import ENV_VAR
from repro.constants import VIRTUAL_ROOT
from repro.spanning.brtree import BRPlusTree


@pytest.fixture(scope="module", autouse=True)
def _invariants_on():
    """Run every random tree with the runtime contracts enabled.

    Module-scoped (not monkeypatch) so hypothesis' function-scoped
    fixture health check stays quiet across @given examples.
    """
    previous = os.environ.get(ENV_VAR)
    os.environ[ENV_VAR] = "1"
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = previous


def random_brplus_tree(rng: np.random.Generator, n: int) -> BRPlusTree:
    """A random forest with random valid backward links."""
    tree = BRPlusTree(n)
    order = rng.permutation(n)
    for index, v in enumerate(order.tolist()):
        if index == 0 or rng.random() < 0.2:
            continue  # stays a root
        parent = int(order[rng.integers(0, index)])
        tree.reparent(v, parent)
    # Valid blinks: each to a random proper ancestor.
    for v in range(n):
        ancestors = []
        node = int(tree.parent[v])
        while node != VIRTUAL_ROOT:
            ancestors.append(node)
            node = int(tree.parent[node])
        if ancestors and rng.random() < 0.6:
            tree.blink[v] = int(ancestors[rng.integers(0, len(ancestors))])
    return tree


def brute_force_drank(tree: BRPlusTree) -> tuple[np.ndarray, np.ndarray]:
    """BFS over tree edges (down) plus backward links (up)."""
    n = tree.n
    drank = np.empty(n, dtype=np.int64)
    dlink = np.empty(n, dtype=np.int64)
    for start in range(n):
        best_node = start
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            if tree.depth[node] < tree.depth[best_node]:
                best_node = node
            for child in tree.children[node]:
                if child not in seen:
                    seen.add(child)
                    stack.append(child)
            blink = int(tree.blink[node])
            if blink != VIRTUAL_ROOT and blink not in seen:
                seen.add(blink)
                stack.append(blink)
        drank[start] = tree.depth[best_node]
        dlink[start] = best_node
    return drank, dlink


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 100_000), n=st.integers(1, 24))
def test_update_drank_matches_brute_force(seed, n):
    rng = np.random.default_rng(seed)
    tree = random_brplus_tree(rng, n)
    tree.update_drank()
    expected_drank, expected_dlink = brute_force_drank(tree)
    assert np.array_equal(tree.drank, expected_drank)
    # dlink must point at a node of the minimal depth (ties allowed).
    assert np.array_equal(
        tree.depth[tree.dlink], tree.depth[expected_dlink]
    )


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 100_000), n=st.integers(2, 20))
def test_drank_monotone_along_tree_edges(seed, n):
    """A child can reach everything its subtree can; its parent can
    reach at least as much: drank(parent) <= drank(child)."""
    rng = np.random.default_rng(seed)
    tree = random_brplus_tree(rng, n)
    tree.update_drank()
    for v in range(n):
        p = int(tree.parent[v])
        if p != VIRTUAL_ROOT:
            assert tree.drank[p] <= tree.drank[v]
