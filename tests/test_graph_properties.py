"""Unit tests for graph statistics."""

import numpy as np

from repro.graph.digraph import Digraph
from repro.graph.properties import (
    degree_stats,
    estimated_depth,
    scc_profile,
)


class TestDegreeStats:
    def test_basic_counts(self):
        g = Digraph(4, np.array([[0, 1], [0, 2], [1, 2]]))
        stats = degree_stats(g)
        assert stats.num_nodes == 4
        assert stats.num_edges == 3
        assert stats.average_degree == 0.75
        assert stats.max_out_degree == 2
        assert stats.max_in_degree == 2
        assert stats.isolated_nodes == 1  # node 3

    def test_empty_graph(self):
        stats = degree_stats(Digraph(0))
        assert stats.average_degree == 0.0
        assert stats.max_out_degree == 0


class TestSCCProfile:
    def test_profile_fields(self):
        sizes = np.array([1, 1, 5, 3, 2, 1])
        profile = scc_profile(sizes)
        assert profile.num_sccs_total == 6
        assert profile.num_sccs_nontrivial == 3
        assert profile.nodes_in_nontrivial_sccs == 10
        assert profile.largest_scc_size == 5
        assert profile.second_largest_scc_size == 3
        assert profile.smallest_nontrivial_scc_size == 2

    def test_all_trivial(self):
        profile = scc_profile(np.ones(4, dtype=int))
        assert profile.num_sccs_nontrivial == 0
        assert profile.largest_scc_size == 0


class TestEstimatedDepth:
    def test_path_graph(self):
        g = Digraph(4, np.array([[0, 1], [1, 2], [2, 3]]))
        assert estimated_depth(g) == 3

    def test_cycle_counts_internal_extent(self):
        g = Digraph(3, np.array([[0, 1], [1, 2], [2, 0]]))
        # One SCC of 3 nodes: a simple path can use all three.
        assert estimated_depth(g) == 2

    def test_empty(self):
        assert estimated_depth(Digraph(0)) == 0

    def test_isolated_nodes(self):
        assert estimated_depth(Digraph(5)) == 0
