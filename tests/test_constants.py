"""Sanity checks on the paper-derived constants."""

import numpy as np

from repro import constants


def test_edge_record_is_two_node_ids():
    assert constants.EDGE_BYTES == 2 * constants.NODE_BYTES


def test_block_holds_whole_edge_records():
    assert constants.DEFAULT_BLOCK_SIZE % constants.EDGE_BYTES == 0
    assert (
        constants.EDGES_PER_BLOCK
        == constants.DEFAULT_BLOCK_SIZE // constants.EDGE_BYTES
    )


def test_paper_section8_values():
    """The exact experimental constants quoted in Section 8."""
    assert constants.NODE_BYTES == 4
    assert constants.DEFAULT_BLOCK_SIZE == 64 * 1024
    assert constants.DEFAULT_TAU_FRACTION == 0.005
    assert constants.DEFAULT_REJECTION_PERIOD == 5


def test_node_dtype_matches_node_bytes():
    assert np.dtype(constants.NODE_DTYPE).itemsize == constants.NODE_BYTES


def test_virtual_root_is_outside_id_space():
    assert constants.VIRTUAL_ROOT < 0
