"""Tests for the EM-SCC contraction baseline, including its failure modes."""

import numpy as np
import pytest

from repro.core.em_scc import EMSCC
from repro.core.validate import partitions_equal
from repro.exceptions import NonTermination
from repro.graph.digraph import Digraph
from repro.graph.diskgraph import DiskGraph
from repro.inmemory.tarjan import tarjan_scc
from repro.io.memory import MemoryModel

from tests.conftest import SMALL_BLOCK


def disk(tmp_path, graph, name="g.bin"):
    return DiskGraph.from_digraph(
        graph, str(tmp_path / name), block_size=SMALL_BLOCK
    )


class TestHappyPath:
    def test_correct_when_graph_fits_memory(self, tmp_path, figure1_graph):
        dg = disk(tmp_path, figure1_graph)
        result = EMSCC().run(dg)  # default memory easily fits 18 edges
        truth, _ = tarjan_scc(figure1_graph)
        assert partitions_equal(truth, result.labels)
        dg.unlink()

    def test_contracts_through_iterations(self, tmp_path):
        """Graph larger than memory whose cycles sit inside partitions:
        contraction shrinks it until it fits (the EM-SCC happy path)."""
        n = 100
        pairs = []
        for i in range(n // 2):
            pairs.append([2 * i, 2 * i + 1])
            pairs.append([2 * i + 1, 2 * i])
        g = Digraph(n, np.array(pairs))
        truth, _ = tarjan_scc(g)
        memory = MemoryModel(
            num_nodes=n, capacity=SMALL_BLOCK + 4 * n, block_size=SMALL_BLOCK
        )
        dg = disk(tmp_path, g)
        result = EMSCC().run(dg, memory=memory)
        assert partitions_equal(truth, result.labels)
        assert result.stats.iterations >= 1
        dg.unlink()


class TestFailureModes:
    def test_case2_dag_larger_than_memory_does_not_terminate(self, tmp_path):
        """Section 4 Case-2: a DAG cannot be compressed by contraction."""
        n = 200
        edges = np.array([[i, i + 1] for i in range(n - 1)])
        g = Digraph(n, edges)
        memory = MemoryModel(
            num_nodes=n, capacity=SMALL_BLOCK + 4 * n, block_size=SMALL_BLOCK
        )
        dg = disk(tmp_path, g)
        with pytest.raises(NonTermination):
            EMSCC().run(dg, memory=memory)
        dg.unlink()

    def test_max_iterations_cap(self, tmp_path):
        """Even a compressible graph aborts at the iteration cap."""
        rng = np.random.default_rng(1)
        n = 150
        g = Digraph(n, rng.integers(0, n, size=(5 * n, 2)))
        memory = MemoryModel(
            num_nodes=n, capacity=SMALL_BLOCK + 4 * n, block_size=SMALL_BLOCK
        )
        dg = disk(tmp_path, g)
        algo = EMSCC(max_iterations=1)
        with pytest.raises(NonTermination):
            algo.run(dg, memory=memory)
        dg.unlink()

    def test_invalid_max_iterations(self):
        with pytest.raises(ValueError):
            EMSCC(max_iterations=0)
