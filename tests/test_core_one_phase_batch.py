"""Tests specific to 1PB-SCC: batching, DP tree rebuild, memory scaling."""

import numpy as np
import pytest

from repro.core.one_phase_batch import OnePhaseBatchSCC
from repro.core.validate import partitions_equal
from repro.graph.digraph import Digraph
from repro.graph.diskgraph import DiskGraph
from repro.inmemory.tarjan import tarjan_scc
from repro.io.memory import MemoryModel
from repro.workloads.synthetic import synthetic_graph

from tests.conftest import SMALL_BLOCK


def disk(tmp_path, graph, name="g.bin"):
    return DiskGraph.from_digraph(
        graph, str(tmp_path / name), block_size=SMALL_BLOCK
    )


class TestBatching:
    def test_one_block_batches_still_correct(self, tmp_path):
        """The most adversarial batching: one block (8 edges) at a time."""
        for seed in range(6):
            rng = np.random.default_rng(seed)
            n = int(rng.integers(10, 80))
            g = Digraph(n, rng.integers(0, n, size=(3 * n, 2)))
            truth, _ = tarjan_scc(g)
            algo = OnePhaseBatchSCC(batch_blocks=1)
            dg = disk(tmp_path, g, name=f"b{seed}.bin")
            result = algo.run(dg)
            assert partitions_equal(truth, result.labels)
            dg.unlink()

    def test_huge_batches_one_shot(self, tmp_path):
        """When the whole graph fits in one batch, a single iteration of
        in-memory Kosaraju should settle everything."""
        planted = synthetic_graph(200, avg_degree=4, massive_sccs=[80], seed=1)
        algo = OnePhaseBatchSCC(batch_blocks=10_000)
        dg = disk(tmp_path, planted.graph)
        result = algo.run(dg)
        assert partitions_equal(planted.labels, result.labels)
        assert result.stats.extras["batches"] <= 2 * result.stats.iterations
        dg.unlink()

    def test_batch_count_reported(self, tmp_path, figure1_graph):
        dg = disk(tmp_path, figure1_graph)
        result = OnePhaseBatchSCC(batch_blocks=1).run(dg)
        assert result.stats.extras["batches"] >= result.stats.iterations
        dg.unlink()

    def test_more_memory_fewer_or_equal_iterations(self, tmp_path):
        """Fig. 13's mechanism: bigger batches converge in fewer passes."""
        planted = synthetic_graph(
            400, avg_degree=5, massive_sccs=[150], seed=4, intra_fraction=0.6
        )
        dg = disk(tmp_path, planted.graph)
        small = OnePhaseBatchSCC(batch_blocks=1).run(dg)
        big = OnePhaseBatchSCC(batch_blocks=1_000).run(dg)
        assert big.stats.iterations <= small.stats.iterations
        assert partitions_equal(small.labels, big.labels)
        dg.unlink()


class TestMemoryModel:
    def test_default_memory_batches_grow_as_nodes_shrink(self, tmp_path):
        """Section 7.4: freed node slots become edge-batch headroom."""
        memory = MemoryModel(num_nodes=1000)
        full = memory.blocks_per_batch(2, 1000)
        after = memory.blocks_per_batch(2, 100)
        assert after >= full

    def test_runs_under_paper_default_memory(self, tmp_path):
        planted = synthetic_graph(300, avg_degree=4, massive_sccs=[100], seed=5)
        dg = disk(tmp_path, planted.graph)
        memory = MemoryModel(num_nodes=300, block_size=SMALL_BLOCK)
        result = OnePhaseBatchSCC().run(dg, memory=memory)
        assert partitions_equal(planted.labels, result.labels)
        dg.unlink()


class TestAblations:
    @pytest.mark.parametrize("acceptance", [True, False])
    @pytest.mark.parametrize("rejection", [True, False])
    def test_optimizations_preserve_partition(
        self, tmp_path, acceptance, rejection
    ):
        rng = np.random.default_rng(12)
        g = Digraph(120, rng.integers(0, 120, size=(420, 2)))
        truth, _ = tarjan_scc(g)
        algo = OnePhaseBatchSCC(
            enable_acceptance=acceptance, enable_rejection=rejection
        )
        dg = disk(tmp_path, g, name=f"a{acceptance}{rejection}.bin")
        result = algo.run(dg)
        assert partitions_equal(truth, result.labels)
        dg.unlink()

    def test_input_file_untouched(self, tmp_path):
        planted = synthetic_graph(150, avg_degree=5, massive_sccs=[70], seed=6)
        dg = disk(tmp_path, planted.graph)
        before = dg.edge_file.read_all().copy()
        OnePhaseBatchSCC(tau_fraction=1e-9, rejection_period=1).run(dg)
        assert np.array_equal(dg.edge_file.read_all(), before)
        dg.unlink()
