"""Tests for the benchmark harness and reporting."""

import numpy as np

from repro.bench.harness import BenchRecord, run_matrix, run_one
from repro.bench.reporting import (
    format_series,
    format_table,
    records_to_rows,
    write_csv,
)
from repro.graph.digraph import Digraph


def small_graph(seed=0):
    rng = np.random.default_rng(seed)
    return Digraph(30, rng.integers(0, 30, size=(90, 2)))


class TestRunOne:
    def test_successful_run(self, tmp_path):
        record = run_one(
            small_graph(),
            "1PB-SCC",
            workload="toy",
            block_size=64,
            workdir=str(tmp_path),
        )
        assert record.ok
        assert record.seconds is not None and record.ios > 0
        assert record.algorithm == "1PB-SCC"
        assert record.workload == "toy"

    def test_timeout_marked_inf(self, tmp_path):
        rng = np.random.default_rng(1)
        big = Digraph(400, rng.integers(0, 400, size=(2000, 2)))
        record = run_one(
            big, "DFS-SCC", time_limit=0.0, block_size=64, workdir=str(tmp_path)
        )
        assert record.status == "INF"
        assert record.display_seconds() == "INF"
        assert record.display_ios() == "INF"

    def test_keep_result(self, tmp_path):
        record = run_one(
            small_graph(), "1P-SCC", block_size=64, keep_result=True,
            workdir=str(tmp_path),
        )
        assert record.result is not None
        assert record.result.num_sccs == record.num_sccs

    def test_params_attached(self, tmp_path):
        record = run_one(
            small_graph(), "1P-SCC", block_size=64,
            params={"num_nodes": 30}, workdir=str(tmp_path),
        )
        assert record.params["num_nodes"] == 30


class TestRunMatrix:
    def test_full_matrix(self, tmp_path):
        graphs = {"a": small_graph(0), "b": small_graph(1)}
        records = run_matrix(graphs, ["1P-SCC", "1PB-SCC"], block_size=64)
        assert len(records) == 4
        assert {r.workload for r in records} == {"a", "b"}
        assert all(r.ok for r in records)


class TestReporting:
    def _records(self):
        return [
            BenchRecord("1PB-SCC", "cit", "ok", seconds=1.5, ios=100,
                        params={"x": 1}),
            BenchRecord("DFS-SCC", "cit", "INF", params={"x": 1}),
            BenchRecord("1PB-SCC", "go", "ok", seconds=2.0, ios=150,
                        params={"x": 2}),
        ]

    def test_format_table_contains_cells(self):
        text = format_table(self._records(), metric="seconds", title="T")
        assert "T" in text
        assert "1.50s" in text
        assert "INF" in text
        assert "cit" in text and "go" in text

    def test_format_table_io_metric(self):
        text = format_table(self._records(), metric="ios")
        assert "100" in text and "150" in text

    def test_format_series(self):
        text = format_series(self._records(), x_param="x", metric="seconds")
        assert text.splitlines()[0].startswith("x")
        assert "1.50s" in text

    def test_rows_and_csv(self, tmp_path):
        rows = records_to_rows(self._records())
        assert rows[0]["algorithm"] == "1PB-SCC"
        assert rows[0]["x"] == 1
        path = str(tmp_path / "out.csv")
        write_csv(self._records(), path)
        content = open(path).read()
        assert "algorithm" in content and "INF" in content

    def test_write_csv_empty(self, tmp_path):
        write_csv([], str(tmp_path / "e.csv"))
