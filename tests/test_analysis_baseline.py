"""Tier-1 tests for the accepted-findings baseline machinery."""

from __future__ import annotations

import json
from collections import Counter

from repro.analysis_static.baseline import (
    apply_baseline,
    load_baseline,
    render_baseline,
    write_baseline,
)
from repro.analysis_static.engine import Violation


def finding(message="nested scan", line=10):
    return Violation("repro/core/a.py", line, 4, "SCAN002", message)


class TestRoundTrip:
    def test_write_then_load_preserves_the_multiset(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        write_baseline(path, [finding(), finding(), finding("other")])
        counts = load_baseline(path)
        assert counts[("repro/core/a.py", "SCAN002", "nested scan")] == 2
        assert counts[("repro/core/a.py", "SCAN002", "other")] == 1

    def test_rendered_form_is_sorted_json_with_comment(self):
        text = render_baseline([finding("zzz"), finding("aaa")])
        payload = json.loads(text)
        assert "write-baseline" in payload["comment"]
        messages = [entry["message"] for entry in payload["findings"]]
        assert messages == sorted(messages)
        assert text.endswith("\n")


class TestApplyBaseline:
    def test_baselined_findings_are_excused(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        write_baseline(path, [finding()])
        fresh, excused = apply_baseline([finding()], load_baseline(path))
        assert fresh == []
        assert len(excused) == 1

    def test_matching_ignores_the_line_number(self, tmp_path):
        # An edit above the finding moves it; the baseline still holds.
        path = str(tmp_path / "baseline.json")
        write_baseline(path, [finding(line=10)])
        fresh, excused = apply_baseline(
            [finding(line=99)], load_baseline(path)
        )
        assert fresh == []
        assert len(excused) == 1

    def test_multiplicity_is_respected(self, tmp_path):
        # One baseline entry excuses one of two identical findings.
        path = str(tmp_path / "baseline.json")
        write_baseline(path, [finding()])
        fresh, excused = apply_baseline(
            [finding(), finding()], load_baseline(path)
        )
        assert len(fresh) == 1
        assert len(excused) == 1

    def test_new_findings_are_not_excused(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        write_baseline(path, [finding()])
        novel = Violation("repro/io/b.py", 3, 0, "THR001", "unguarded write")
        fresh, excused = apply_baseline(
            [finding(), novel], load_baseline(path)
        )
        assert [v.rule for v in fresh] == ["THR001"]
        assert [v.rule for v in excused] == ["SCAN002"]

    def test_empty_baseline_excuses_nothing(self):
        fresh, excused = apply_baseline([finding()], Counter())
        assert len(fresh) == 1
        assert excused == []


class TestCommittedBaseline:
    def test_repo_baseline_is_empty(self):
        # The tree is contract-clean; the committed baseline must not
        # quietly accumulate accepted findings.
        from pathlib import Path

        repo = Path(__file__).resolve().parents[1]
        payload = json.loads((repo / "lint-baseline.json").read_text())
        assert payload["findings"] == []
