"""Tier-1 tests for the function-level CFG builder (analysis_static.cfg)."""

from __future__ import annotations

import ast

import pytest

from repro.analysis_static.cfg import build_cfg


def cfg_of(source):
    """Build the CFG of the first function defined in ``source``."""
    tree = ast.parse(source)
    func = next(
        node for node in ast.walk(tree) if isinstance(node, ast.FunctionDef)
    )
    return build_cfg(func)


class TestConstruction:
    def test_rejects_non_function_nodes(self):
        with pytest.raises(TypeError):
            build_cfg(ast.parse("x = 1"))

    def test_linear_function_reaches_exit(self):
        cfg = cfg_of("def f():\n    a = 1\n    b = a + 1\n    return b\n")
        reach = cfg.reachable_from(cfg.entry)
        assert cfg.exit in reach

    def test_block_of_finds_every_statement(self):
        source = (
            "def f(x):\n"
            "    if x:\n"
            "        a = 1\n"
            "    else:\n"
            "        a = 2\n"
            "    return a\n"
        )
        cfg = cfg_of(source)
        func = cfg.func
        for stmt in ast.walk(func):
            if isinstance(stmt, (ast.Assign, ast.Return)):
                assert cfg.block_of(stmt) is not None

    def test_branches_live_in_distinct_blocks(self):
        source = (
            "def f(x):\n"
            "    if x:\n"
            "        a = 1\n"
            "    else:\n"
            "        a = 2\n"
            "    return a\n"
        )
        cfg = cfg_of(source)
        assigns = [
            stmt
            for stmt in ast.walk(cfg.func)
            if isinstance(stmt, ast.Assign)
        ]
        blocks = {cfg.block_of(stmt) for stmt in assigns}
        assert len(blocks) == 2


class TestLoops:
    def test_while_records_head_and_members(self):
        source = (
            "def f(n):\n"
            "    i = 0\n"
            "    while i < n:\n"
            "        i = i + 1\n"
            "    return i\n"
        )
        cfg = cfg_of(source)
        loop = next(
            node for node in ast.walk(cfg.func) if isinstance(node, ast.While)
        )
        head = cfg.loop_heads[id(loop)]
        members = cfg.loop_blocks[id(loop)]
        body_assign = [
            stmt
            for stmt in ast.walk(loop)
            if isinstance(stmt, ast.Assign)
        ][0]
        assert cfg.block_of(body_assign) in members
        assert head not in members

    def test_for_header_binds_the_loop_target(self):
        # The synthetic `target = iter` assignment anchors in the head
        # block so reaching-definitions sees the binding.
        source = "def f(xs):\n    for x in xs:\n        use(x)\n"
        cfg = cfg_of(source)
        loop = next(
            node for node in ast.walk(cfg.func) if isinstance(node, ast.For)
        )
        head = cfg.loop_heads[id(loop)]
        names = set()
        for stmt in cfg.blocks[head].statements:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Name) and isinstance(
                    node.ctx, ast.Store
                ):
                    names.add(node.id)
        assert "x" in names

    def test_break_exits_the_loop(self):
        source = (
            "def f(xs):\n"
            "    for x in xs:\n"
            "        break\n"
            "    return 1\n"
        )
        cfg = cfg_of(source)
        assert cfg.exit in cfg.reachable_from(cfg.entry)


class TestExceptions:
    def test_call_blocks_may_raise(self):
        cfg = cfg_of("def f():\n    g()\n")
        raising = [b for b in cfg.blocks if b.may_raise]
        assert raising
        assert all(b.exc_successor == cfg.exit for b in raising)

    def test_call_free_blocks_do_not_raise(self):
        cfg = cfg_of("def f():\n    a = 1\n    return a\n")
        assert not any(b.may_raise for b in cfg.blocks)

    def test_try_routes_exceptions_to_dispatch_not_exit(self):
        source = (
            "def f():\n"
            "    try:\n"
            "        g()\n"
            "    except ValueError:\n"
            "        h()\n"
        )
        cfg = cfg_of(source)
        call_g = next(
            node
            for node in ast.walk(cfg.func)
            if isinstance(node, ast.Call)
            and getattr(node.func, "id", "") == "g"
        )
        body_block = cfg.blocks[cfg.block_of(call_g)]
        assert body_block.exc_successor != cfg.exit

    def test_handler_regions_are_recorded(self):
        source = (
            "def f():\n"
            "    try:\n"
            "        g()\n"
            "    except ValueError:\n"
            "        a = 1\n"
            "        h()\n"
        )
        cfg = cfg_of(source)
        assert len(cfg.handler_regions) == 1
        handler_assign = next(
            node
            for node in ast.walk(cfg.func)
            if isinstance(node, ast.Assign)
        )
        assert cfg.block_of(handler_assign) in cfg.handler_regions[0]

    @staticmethod
    def _dispatch_block(clause):
        source = (
            "def f():\n"
            "    try:\n"
            "        g()\n"
            f"    {clause}\n"
            "        h()\n"
        )
        cfg = cfg_of(source)
        call_g = next(
            node
            for node in ast.walk(cfg.func)
            if isinstance(node, ast.Call)
            and getattr(node.func, "id", "") == "g"
        )
        body_block = cfg.blocks[cfg.block_of(call_g)]
        return cfg, cfg.blocks[body_block.exc_successor]

    def test_unmatched_typed_handler_escapes(self):
        # `except ValueError` does not catch everything: the dispatch
        # block keeps an outward edge for unmatched exceptions.
        cfg, dispatch = self._dispatch_block("except ValueError:")
        assert cfg.exit in dispatch.successors

    def test_bare_and_baseexception_handlers_catch_all(self):
        for clause in ("except:", "except BaseException:"):
            cfg, dispatch = self._dispatch_block(clause)
            assert cfg.exit not in dispatch.successors, clause


class TestWithRegions:
    def test_with_body_records_held_expression(self):
        source = (
            "def f(self):\n"
            "    with self._lock:\n"
            "        a = 1\n"
        )
        cfg = cfg_of(source)
        assign = next(
            node
            for node in ast.walk(cfg.func)
            if isinstance(node, ast.Assign)
            and isinstance(node.targets[0], ast.Name)
        )
        block = cfg.blocks[cfg.block_of(assign)]
        assert "self._lock" in block.held_with

    def test_hold_does_not_leak_past_the_region(self):
        source = (
            "def f(self):\n"
            "    with self._lock:\n"
            "        a = 1\n"
            "    b = 2\n"
        )
        cfg = cfg_of(source)
        tail = next(
            node
            for node in ast.walk(cfg.func)
            if isinstance(node, ast.Assign)
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == "b"
        )
        block = cfg.blocks[cfg.block_of(tail)]
        assert "self._lock" not in block.held_with


class TestReachability:
    def test_avoid_blocks_are_not_traversed(self):
        source = (
            "def f(x):\n"
            "    if x:\n"
            "        a = 1\n"
            "    barrier(a)\n"
            "    return a\n"
        )
        cfg = cfg_of(source)
        call = next(
            node for node in ast.walk(cfg.func) if isinstance(node, ast.Call)
        )
        barrier_block = cfg.block_of(call)
        # Normal flow funnels through the barrier block here.
        assert cfg.exit not in cfg.reachable_from(
            cfg.entry, avoid={barrier_block}, follow_exceptions=False
        )
        # Reachability is reflexive: the start is always reported.
        assert barrier_block in cfg.reachable_from(barrier_block)
