"""Tests for topological sorting and longest-path depths."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import GraphFormatError
from repro.graph.digraph import Digraph
from repro.inmemory.toposort import (
    dag_depth,
    longest_path_depths,
    topological_sort,
)


def random_dag(n, m, seed):
    """A random DAG: edges oriented low id -> high id."""
    rng = np.random.default_rng(seed)
    pairs = rng.integers(0, n, size=(m, 2))
    pairs = pairs[pairs[:, 0] != pairs[:, 1]]
    lo = pairs.min(axis=1)
    hi = pairs.max(axis=1)
    return Digraph(n, np.column_stack((lo, hi)))


class TestTopologicalSort:
    def test_chain(self):
        g = Digraph(4, np.array([[0, 1], [1, 2], [2, 3]]))
        assert topological_sort(g).tolist() == [0, 1, 2, 3]

    def test_cycle_raises(self):
        g = Digraph(2, np.array([[0, 1], [1, 0]]))
        with pytest.raises(GraphFormatError):
            topological_sort(g)

    def test_self_loop_raises(self):
        g = Digraph(1, np.array([[0, 0]]))
        with pytest.raises(GraphFormatError):
            topological_sort(g)

    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=40),
        m=st.integers(min_value=0, max_value=120),
        seed=st.integers(0, 9999),
    )
    def test_order_respects_every_edge(self, n, m, seed):
        g = random_dag(n, m, seed)
        order = topological_sort(g)
        position = np.empty(n, dtype=np.int64)
        position[order] = np.arange(n)
        for u, v in g.edges.tolist():
            assert position[u] < position[v]


class TestLongestPathDepths:
    def test_chain_depths(self):
        g = Digraph(4, np.array([[0, 1], [1, 2], [2, 3]]))
        assert longest_path_depths(g).tolist() == [1, 2, 3, 4]

    def test_diamond_takes_longest_route(self):
        # 0 -> 1 -> 3 and 0 -> 3: node 3 should be at depth 3.
        g = Digraph(4, np.array([[0, 1], [1, 3], [0, 3]]))
        depths = longest_path_depths(g)
        assert depths[3] == 3

    def test_base_depth_carries_through(self):
        g = Digraph(2, np.array([[0, 1]]))
        depths = longest_path_depths(g, base_depth=np.array([5, 1]))
        assert depths.tolist() == [5, 6]

    def test_base_depth_shape_checked(self):
        g = Digraph(2)
        with pytest.raises(ValueError):
            longest_path_depths(g, base_depth=np.array([1]))

    def test_dag_depth(self):
        g = Digraph(4, np.array([[0, 1], [1, 2], [0, 3]]))
        assert dag_depth(g) == 2

    def test_dag_depth_empty(self):
        assert dag_depth(Digraph(0)) == 0
