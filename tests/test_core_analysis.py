"""Tests for the analytic cost model — including bound-vs-measured."""

import numpy as np
import pytest

from repro import compute_sccs
from repro.core.analysis import (
    batch_cpu_cost,
    blocks_for_edges,
    buchsbaum_io_estimate,
    dfs_scc_io_bound,
    extra_edges_loadable,
    optimal_batch_count,
    reduction_io_savings,
    scan_ios,
    sort_ios,
    two_phase_io_bound,
)
from repro.graph.digraph import Digraph
from repro.graph.properties import estimated_depth


class TestPrimitives:
    def test_blocks_for_edges(self):
        assert blocks_for_edges(0, 64) == 0
        assert blocks_for_edges(8, 64) == 1
        assert blocks_for_edges(9, 64) == 2

    def test_scan_matches_blocks(self):
        assert scan_ios(100, 64) == blocks_for_edges(100, 64)

    def test_sort_superlinear_only_when_memory_small(self):
        cheap = sort_ios(10_000, 1 << 30, 65536)
        costly = sort_ios(10_000, 2 * 65536, 65536)
        assert costly >= cheap

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            blocks_for_edges(-1, 64)


class TestPaperNumbers:
    def test_webspam_buchsbaum_vs_paper_claim(self):
        """Section 2: Buchsbaum et al. need ~1.566G I/Os for one DFS on
        WEBSPAM-UK2007; the paper's approach ~4M.  The model should put
        the theoretical bound in the right ballpark (same order)."""
        n = 105_895_908
        m = 3_738_733_568
        estimate = buchsbaum_io_estimate(n, m, 64 * 1024)
        assert 1e8 < estimate < 1e11

    def test_section74_savings_formula(self):
        """(P + 2Q) L(L-1)/2 · b/B with the paper's Table 1 magnitudes."""
        savings = reduction_io_savings(
            nodes_per_iteration=5.9e6,
            edges_per_iteration=129e6,
            iterations=21,
            block_size=64 * 1024,
        )
        assert savings > 0
        # Doubling the pruning rate doubles the savings (linearity).
        assert reduction_io_savings(11.8e6, 258e6, 21, 64 * 1024) == (
            pytest.approx(2 * savings)
        )

    def test_extra_edges_formula(self):
        """P·L(L-1)/4: the paper's 7.6M first-iteration nodes buy 3.8M
        edges of headroom per subsequent iteration."""
        per_iteration_gain = extra_edges_loadable(7.6e6, 2) / 1  # L=2: one gap
        assert per_iteration_gain == pytest.approx(3.8e6)

    def test_batch_cpu_tradeoff(self):
        n, m = 1_000_000, 35_000_000
        beta = optimal_batch_count(n, m)
        assert beta == 35
        assert batch_cpu_cost(n, m, beta) == m + beta * n
        # Far-from-optimal batch counts cost more.
        assert batch_cpu_cost(n, m, 1000) > batch_cpu_cost(n, m, beta)


class TestBoundsVsMeasured:
    @pytest.fixture
    def graph(self):
        rng = np.random.default_rng(3)
        return Digraph(60, rng.integers(0, 60, size=(240, 2)))

    def test_two_phase_within_bound(self, graph):
        result = compute_sccs(graph, algorithm="2P-SCC", block_size=64)
        depth = max(1, estimated_depth(graph))
        bound = two_phase_io_bound(depth, graph.num_edges, 64)
        assert result.stats.io.reads <= bound

    def test_dfs_scc_within_bound(self, graph):
        result = compute_sccs(graph, algorithm="DFS-SCC", block_size=64)
        depth = max(1, estimated_depth(graph))
        bound = dfs_scc_io_bound(depth, graph.num_edges, 64)
        assert result.stats.io.total <= bound
