"""Tests for repro.parallel: determinism, crash containment, components.

The headline property — a ``workers=N`` run is byte-identical to a
serial run in partition, iteration count and counted I/O, for every
algorithm and every worker count — is fuzzed here over random graphs
and pinned again at gate scale by ``benchmarks/regression.py
--workers``.  The satellites ride along: the worker-kill drill (planted
``worker-crash@K`` faults must cost fallbacks, never answers), the
vectorised relabeler's interval-property contract, the arena's
generation protocol, the oracle's buffer-reuse export, and the parallel
external sort.
"""

import dataclasses

import numpy as np
import pytest

from repro.constants import VIRTUAL_ROOT
from repro.core import ALGORITHMS
from repro.core.one_phase import OnePhaseSCC
from repro.core.validate import partitions_equal
from repro.graph.digraph import Digraph
from repro.graph.diskgraph import DiskGraph
from repro.inmemory.tarjan import tarjan_scc
from repro.io.counter import IOCounter
from repro.io.edgefile import EdgeFile
from repro.io.extsort import external_sort_edges
from repro.io.faults import FaultPlan
from repro.io.memory import MemoryModel
from repro.kernels.oracle import AncestorOracle
from repro.parallel import SnapshotArena, vector_relabel
from repro.workloads.synthetic import planted_scc_graph

from tests.conftest import SMALL_BLOCK

IO_FIELDS = (
    "seq_reads", "seq_writes", "rand_reads", "rand_writes",
    "bytes_read", "bytes_written",
)


def _random_digraph(n, m, seed):
    rng = np.random.default_rng(seed)
    edges = rng.integers(0, n, size=(m, 2), dtype=np.int64)
    return Digraph(n, edges)


def _pairs_digraph(n):
    """2-cycle pairs — the one shape EM-SCC always contracts through."""
    pairs = []
    for i in range(n // 2):
        pairs.append([2 * i, 2 * i + 1])
        pairs.append([2 * i + 1, 2 * i])
    return Digraph(n, np.array(pairs))


def _disk(tmp_path, graph, name):
    return DiskGraph.from_digraph(
        graph, str(tmp_path / name), block_size=SMALL_BLOCK
    )


def _signature(result):
    """Everything the determinism contract pins, as one comparable tuple."""
    io = result.stats.io
    return (
        tuple(result.labels.tolist()),
        result.stats.iterations,
        result.num_sccs,
        tuple(getattr(io, fld) for fld in IO_FIELDS),
    )


class TestSerialParallelDeterminism:
    """Fuzz: workers ∈ {1, 2, 4} retrace the serial run byte-for-byte."""

    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    @pytest.mark.parametrize("seed", [0, 3])
    def test_partition_iterations_and_io_identical(
        self, tmp_path, algorithm, seed
    ):
        if algorithm == "EM-SCC":
            graph = _pairs_digraph(80 + 20 * seed)
            memory = MemoryModel(
                num_nodes=graph.num_nodes,
                capacity=SMALL_BLOCK + 4 * graph.num_nodes,
                block_size=SMALL_BLOCK,
            )
        else:
            graph = _random_digraph(60 + 10 * seed, 300, seed)
            memory = None
        serial = ALGORITHMS[algorithm]().run(
            _disk(tmp_path, graph, f"s{seed}.bin"), memory=memory
        )
        baseline = _signature(serial)
        for workers in (1, 2, 4):
            result = ALGORITHMS[algorithm]().run(
                _disk(tmp_path, graph, f"w{workers}-{seed}.bin"),
                memory=memory,
                workers=workers,
            )
            assert _signature(result) == baseline
            assert result.stats.extras.get("workers") == workers

    def test_negative_workers_rejected(self, tmp_path):
        graph = _random_digraph(20, 60, 1)
        with pytest.raises(ValueError, match="workers"):
            OnePhaseSCC().run(_disk(tmp_path, graph, "neg.bin"), workers=-1)


class TestWorkerCrashContainment:
    """A killed worker costs counted fallbacks, never a wrong answer."""

    def test_planted_crashes_fall_back_in_process(self, tmp_path):
        graph = planted_scc_graph(
            300, [60, 40, 20], avg_degree=4.0,
            rng=np.random.default_rng(7),
        ).graph
        serial = OnePhaseSCC().run(_disk(tmp_path, graph, "serial.bin"))
        crashed = OnePhaseSCC().run(
            _disk(tmp_path, graph, "crashed.bin"),
            workers=2,
            fault_plan="worker-crash@1;worker-crash@4",
        )
        assert _signature(crashed) == _signature(serial)
        assert crashed.stats.extras["parallel_fallbacks"] > 0

    def test_worker_crash_token_round_trips(self):
        plan = FaultPlan.parse("seed=9;worker-crash@4;worker-crash@1")
        assert plan.worker_crashes == [1, 4]
        respec = FaultPlan.parse(plan.to_spec())
        assert respec.worker_crashes == plan.worker_crashes
        assert respec.to_spec() == plan.to_spec()


class TestVectorRelabel:
    """The array-shaped relabeler satisfies the oracle's only contract."""

    @staticmethod
    def _random_forest(n, seed, live_fraction=1.0):
        rng = np.random.default_rng(seed)
        parent = np.full(n, VIRTUAL_ROOT, dtype=np.int64)
        depth = np.zeros(n, dtype=np.int64)
        for node in range(1, n):
            if rng.random() < 0.1:
                continue  # another root
            parent[node] = int(rng.integers(0, node))
            depth[node] = depth[parent[node]] + 1
        live = None
        if live_fraction < 1.0:
            # Dead subtrees only: a live node's parent must stay live.
            live = np.ones(n, dtype=bool)
            for node in rng.choice(n, size=int(n * (1 - live_fraction)),
                                   replace=False):
                live[node] = False
            for node in range(n):
                if parent[node] != VIRTUAL_ROOT and not live[parent[node]]:
                    live[node] = False
        return parent, depth, live

    @staticmethod
    def _is_ancestor_by_walk(parent, anc, desc):
        node = desc
        while node != VIRTUAL_ROOT:
            if node == anc:
                return True
            node = parent[node]
        return False

    @pytest.mark.parametrize("seed,live_fraction", [(0, 1.0), (1, 1.0),
                                                    (2, 0.7), (3, 0.5)])
    def test_interval_property_matches_parent_walks(self, seed, live_fraction):
        n = 200
        parent, depth, live = self._random_forest(n, seed, live_fraction)
        tin = np.empty(n, dtype=np.int64)
        tout = np.empty(n, dtype=np.int64)
        vector_relabel(parent, depth, live, tin, tout)
        rng = np.random.default_rng(seed + 100)
        alive = np.flatnonzero(live) if live is not None else np.arange(n)
        if live is not None:
            dead = np.flatnonzero(~live)
            assert (tin[dead] == -1).all() and (tout[dead] == -1).all()
        for _ in range(400):
            a, d = (int(alive[i]) for i in rng.integers(0, alive.size, 2))
            expected = self._is_ancestor_by_walk(parent, a, d)
            assert bool(tin[a] <= tin[d] < tout[a]) == expected

    def test_labels_are_a_permutation_per_tree(self):
        parent, depth, live = self._random_forest(150, 4)
        tin = np.empty(150, dtype=np.int64)
        tout = np.empty(150, dtype=np.int64)
        vector_relabel(parent, depth, live, tin, tout)
        assert sorted(tin.tolist()) == list(range(150))
        assert (tout == tin + (tout - tin)).all()
        roots = np.flatnonzero(parent == VIRTUAL_ROOT)
        assert int((tout[roots] - tin[roots]).sum()) == 150


class TestSnapshotArena:
    """Generation protocol, double-buffering, owner-unlinks lifetime."""

    def test_stage_commit_snapshot_round_trip(self):
        with SnapshotArena(8, create=True) as arena:
            stage = arena.stage()
            stage["tin"][:] = np.arange(8)
            stage["live"][:] = 1
            gen = arena.commit()
            got_gen, views = arena.snapshot()
            assert got_gen == gen == 1
            assert views["tin"].tolist() == list(range(8))
            # The next stage is the *other* buffer: writing it does not
            # disturb the committed snapshot until the commit flips.
            arena.stage()["tin"][:] = -5
            assert arena.snapshot()[1]["tin"].tolist() == list(range(8))
            del stage, views  # release buffer exports before unlink

    def test_reader_attachment_checks_size(self):
        with SnapshotArena(16, create=True) as arena:
            reader = SnapshotArena(16, name=arena.name)
            assert reader.generation == arena.generation
            reader.close()
            with pytest.raises(ValueError, match="sized for"):
                SnapshotArena(17, name=arena.name)

    def test_generation_mismatch_is_detectable(self):
        with SnapshotArena(4, create=True) as arena:
            gen, views = arena.snapshot()
            arena.stage()
            arena.commit()
            assert arena.generation != gen  # reader must discard
            del views  # release buffer exports before unlink


class TestOracleExport:
    """export(into=) reuses caller buffers; export() copies."""

    @staticmethod
    def _oracle(n=32):
        graph = _random_digraph(n, 4 * n, 11)

        class _Forest:
            pass

        oracle = AncestorOracle(n)
        oracle.tin[:] = np.arange(n)
        oracle.tout[:] = np.arange(n) + 1
        return oracle

    def test_export_returns_private_copies(self):
        oracle = self._oracle()
        tin, tout = oracle.export()
        tin[0] = -99
        assert oracle.tin[0] == 0
        assert tout is not oracle.tout

    def test_export_into_reuses_buffers(self):
        oracle = self._oracle()
        buf_tin = np.empty(32, dtype=np.int64)
        buf_tout = np.empty(32, dtype=np.int64)
        tin, tout = oracle.export(into=(buf_tin, buf_tout))
        assert tin is buf_tin and tout is buf_tout
        assert (tin == oracle.tin).all() and (tout == oracle.tout).all()


class TestParallelExternalSort:
    """Run formation in workers: identical bytes, identical counted I/O."""

    @pytest.mark.parametrize("order", ["source", "target"])
    def test_bytes_and_io_identical(self, tmp_path, order):
        rng = np.random.default_rng(5)
        edges = rng.integers(0, 999, size=(6000, 2), dtype=np.uint32)

        def run(workers):
            counter = IOCounter()
            src = EdgeFile.create(
                str(tmp_path / f"in-{order}-{workers}.bin"),
                counter=counter, block_size=256,
            )
            src.append(edges)
            src.flush()
            memory = MemoryModel(num_nodes=0, capacity=4 * 256,
                                 block_size=256)
            out = external_sort_edges(
                src, order=order, memory=memory,
                out_path=str(tmp_path / f"out-{order}-{workers}.bin"),
                workers=workers,
            )
            data = open(out.path, "rb").read()  # repro: allow[IO001]
            return data, dataclasses.asdict(counter.stats)

        serial_bytes, serial_io = run(0)
        parallel_bytes, parallel_io = run(2)
        assert parallel_bytes == serial_bytes
        assert parallel_io == serial_io

    def test_sorted_output_is_correct(self, tmp_path):
        rng = np.random.default_rng(6)
        edges = rng.integers(0, 50, size=(500, 2), dtype=np.uint32)
        src = EdgeFile.create(str(tmp_path / "c.bin"), counter=IOCounter(),
                              block_size=256)
        src.append(edges)
        src.flush()
        out = external_sort_edges(src, order="source", workers=2,
                                  out_path=str(tmp_path / "c.sorted"))
        got = np.concatenate(list(out.scan()))
        expected = edges[np.lexsort((edges[:, 1], edges[:, 0]))]
        assert (got == expected).all()


class TestReportParallelLine:
    """A traced parallel run renders its efficiency in the report."""

    def test_report_renders_parallel_efficiency(self, tmp_path):
        from repro.obs import TraceWriter, Tracer
        from repro.obs.report import render_report
        from repro.obs.trace import load_trace

        graph = _random_digraph(60, 300, 2)
        trace_path = str(tmp_path / "run.jsonl")
        writer = TraceWriter(trace_path, metadata={"algorithm": "1P-SCC"})
        OnePhaseSCC().run(
            _disk(tmp_path, graph, "rep.bin"),
            workers=2,
            tracer=Tracer(sink=writer),
        )
        writer.close()
        text = render_report(load_trace(trace_path))
        assert "parallel: 2 workers," in text
        assert "worker-busy" in text
        assert "of 2×wall" in text

    def test_serial_report_has_no_parallel_line(self, tmp_path):
        from repro.obs import TraceWriter, Tracer
        from repro.obs.report import render_report
        from repro.obs.trace import load_trace

        graph = _random_digraph(40, 150, 3)
        trace_path = str(tmp_path / "serial.jsonl")
        writer = TraceWriter(trace_path, metadata={"algorithm": "1P-SCC"})
        OnePhaseSCC().run(
            _disk(tmp_path, graph, "srep.bin"), tracer=Tracer(sink=writer)
        )
        writer.close()
        assert "parallel:" not in render_report(load_trace(trace_path))


class TestResultExtras:
    """Parallel tallies surface as extras and never feed fingerprints."""

    def test_extras_present_and_plausible(self, tmp_path):
        graph = _random_digraph(80, 400, 2)
        result = OnePhaseSCC().run(
            _disk(tmp_path, graph, "extras.bin"), workers=2
        )
        extras = result.stats.extras
        assert extras["workers"] == 2
        assert extras["parallel_batches"] > 0
        assert extras["parallel_fallbacks"] >= 0
        assert extras["parallel_stale_bundles"] >= 0

    def test_serial_runs_carry_no_parallel_extras(self, tmp_path):
        graph = _random_digraph(40, 150, 8)
        result = OnePhaseSCC().run(_disk(tmp_path, graph, "noext.bin"))
        assert "workers" not in result.stats.extras
        truth, _ = tarjan_scc(graph)
        assert partitions_equal(truth, result.labels)
