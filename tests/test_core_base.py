"""Tests for the algorithm base plumbing: results, deadlines, stats."""

import time

import numpy as np
import pytest

from repro.core.base import Deadline, SCCResult, RunStats, canonicalize_labels
from repro.exceptions import AlgorithmTimeout
from repro.io.counter import IOStats


class TestDeadline:
    def test_no_limit_never_fires(self):
        deadline = Deadline("x", None)
        deadline.check()

    def test_elapsed_grows(self):
        deadline = Deadline("x", None)
        time.sleep(0.01)
        assert deadline.elapsed >= 0.01

    def test_expired_deadline_raises(self):
        deadline = Deadline("algo", 0.0)
        time.sleep(0.001)
        with pytest.raises(AlgorithmTimeout) as excinfo:
            deadline.check()
        assert excinfo.value.algorithm == "algo"


class TestCanonicalize:
    def test_relabels_by_first_appearance(self):
        labels, count = canonicalize_labels(np.array([7, 7, 3, 7, 3, 9]))
        assert count == 3
        assert labels[0] == labels[1] == labels[3]
        assert labels[2] == labels[4]
        assert len({int(labels[0]), int(labels[2]), int(labels[5])}) == 3

    def test_empty(self):
        labels, count = canonicalize_labels(np.array([], dtype=np.int64))
        assert count == 0


class TestSCCResult:
    def _result(self):
        labels = np.array([0, 0, 1, 2, 2, 2])
        stats = RunStats("t", 1, IOStats(), 0.0)
        return SCCResult(labels, 3, stats)

    def test_scc_sizes(self):
        assert self._result().scc_sizes.tolist() == [2, 1, 3]

    def test_members(self):
        assert self._result().members(2).tolist() == [3, 4, 5]

    def test_nontrivial_count(self):
        assert self._result().nontrivial_count() == 2
