"""Unit tests for graph transformations."""

import numpy as np
import pytest

from repro.graph.builders import (
    add_random_edges,
    induced_subgraph,
    random_node_sample,
    relabel_nodes,
)
from repro.graph.digraph import Digraph


class TestInducedSubgraph:
    def test_keeps_internal_edges_only(self):
        g = Digraph(5, np.array([[0, 1], [1, 2], [2, 3], [3, 4]]))
        sub, original = induced_subgraph(g, np.array([1, 2, 3]))
        assert sub.num_nodes == 3
        assert sub.num_edges == 2  # 1->2 and 2->3 survive
        assert original.tolist() == [1, 2, 3]

    def test_relabelling_is_consistent(self):
        g = Digraph(4, np.array([[3, 1]]))
        sub, original = induced_subgraph(g, np.array([3, 1]))
        # original[i] maps subgraph node i back to the input graph
        u, v = sub.edges[0]
        assert original[u] == 3 and original[v] == 1

    def test_out_of_range_nodes_rejected(self):
        g = Digraph(3)
        with pytest.raises(ValueError):
            induced_subgraph(g, np.array([5]))

    def test_duplicate_nodes_deduplicated(self):
        g = Digraph(3, np.array([[0, 1]]))
        sub, original = induced_subgraph(g, np.array([1, 1, 0]))
        assert sub.num_nodes == 2


class TestRelabel:
    def test_merges_and_drops_self_loops(self):
        g = Digraph(4, np.array([[0, 1], [1, 2], [2, 3]]))
        mapping = np.array([0, 0, 1, 2])  # contract {0,1}
        out = relabel_nodes(g, mapping, 3)
        assert out.num_nodes == 3
        assert out.num_edges == 2  # (0,1) became a self-loop and is gone

    def test_mapping_must_cover_all_nodes(self):
        g = Digraph(3)
        with pytest.raises(ValueError):
            relabel_nodes(g, np.array([0, 1]), 2)


class TestAddRandomEdges:
    def test_adds_about_the_requested_fraction(self):
        g = Digraph(100, np.random.default_rng(0).integers(0, 100, (1000, 2)))
        out = add_random_edges(g, 0.10, rng=np.random.default_rng(1))
        assert 1050 <= out.num_edges <= 1100  # self-loop rejections allowed

    def test_zero_fraction_is_identity(self):
        g = Digraph(10, np.array([[0, 1]]))
        out = add_random_edges(g, 0.0)
        assert out == g

    def test_negative_fraction_rejected(self):
        with pytest.raises(ValueError):
            add_random_edges(Digraph(2), -0.1)

    def test_no_self_loops_added(self):
        g = Digraph(5, np.random.default_rng(2).integers(0, 5, (100, 2)))
        out = add_random_edges(g, 1.0, rng=np.random.default_rng(3))
        added = out.edges[g.num_edges :]
        assert (added[:, 0] != added[:, 1]).all()


class TestRandomNodeSample:
    def test_sample_size(self):
        g = Digraph(100)
        sample = random_node_sample(g, 0.2, rng=np.random.default_rng(0))
        assert sample.shape == (20,)
        assert len(set(sample.tolist())) == 20

    def test_fraction_validation(self):
        g = Digraph(10)
        with pytest.raises(ValueError):
            random_node_sample(g, 0.0)
        with pytest.raises(ValueError):
            random_node_sample(g, 1.5)
