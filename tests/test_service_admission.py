"""Admission control: quote math and the fixed-window block budget."""

from __future__ import annotations

import pytest

from repro.constants import DEFAULT_BLOCK_SIZE
from repro.obs.heartbeat import SCAN_BUDGETS, predicted_blocks_per_scan
from repro.service.admission import (
    DEFAULT_ITERATIONS_HINT,
    AdmissionController,
    quote_rebuild_blocks,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestQuote:
    def test_quote_follows_the_cost_model(self):
        num_edges, block = 10_000, DEFAULT_BLOCK_SIZE
        quote = quote_rebuild_blocks("1PB-SCC", num_edges, block)
        expected = (
            SCAN_BUDGETS["1PB-SCC"]
            * predicted_blocks_per_scan(num_edges, block)
            * DEFAULT_ITERATIONS_HINT
        )
        assert quote == expected

    def test_quote_scales_with_iterations_hint(self):
        base = quote_rebuild_blocks("1PB-SCC", 10_000, 4096, iterations_hint=1)
        assert quote_rebuild_blocks("1PB-SCC", 10_000, 4096,
                                    iterations_hint=4) == 4 * base

    def test_empty_graph_still_quotes_at_least_one_block(self):
        assert quote_rebuild_blocks("1PB-SCC", 0, 4096) >= 1

    def test_unknown_algorithm_uses_the_fallback_budget(self):
        quote = quote_rebuild_blocks("NOT-AN-ALG", 10_000, 4096)
        assert quote > 0


class TestController:
    def test_admits_until_the_window_is_spent(self):
        clock = FakeClock()
        ctl = AdmissionController(100, window_seconds=60.0, clock=clock)
        first = ctl.request(60)
        assert first.admitted and first.window_used_blocks == 60
        second = ctl.request(60)
        assert not second.admitted
        assert second.reason.startswith("quote of 60 blocks exceeds")
        assert ctl.admitted_total == 1 and ctl.rejected_total == 1

    def test_rejection_names_the_window_reset(self):
        clock = FakeClock()
        ctl = AdmissionController(10, window_seconds=60.0, clock=clock)
        ctl.request(10)
        clock.advance(45.0)
        decision = ctl.request(1)
        assert not decision.admitted
        assert decision.retry_after_s == pytest.approx(15.0)

    def test_window_rolls_and_budget_returns(self):
        clock = FakeClock()
        ctl = AdmissionController(10, window_seconds=60.0, clock=clock)
        assert ctl.request(10).admitted
        assert not ctl.request(1).admitted
        clock.advance(61.0)
        assert ctl.request(10).admitted
        assert ctl.window_used_blocks == 10

    def test_oversized_quote_never_admits(self):
        ctl = AdmissionController(10, clock=FakeClock())
        decision = ctl.request(11)
        assert not decision.admitted
        assert decision.window_quota_blocks == 10

    def test_decision_wire_form(self):
        ctl = AdmissionController(100, clock=FakeClock())
        payload = ctl.request(5).to_dict()
        assert payload["admitted"] is True
        assert payload["quoted_blocks"] == 5
        assert set(payload) == {
            "admitted", "quoted_blocks", "window_used_blocks",
            "window_quota_blocks", "retry_after_s", "reason",
        }

    def test_note_actual_tallies_for_observability(self):
        ctl = AdmissionController(100, clock=FakeClock())
        ctl.note_actual(7)
        ctl.note_actual(3)
        assert ctl.actual_blocks_total == 10

    def test_invalid_construction_and_requests(self):
        with pytest.raises(ValueError):
            AdmissionController(0)
        with pytest.raises(ValueError):
            AdmissionController(10, window_seconds=0)
        ctl = AdmissionController(10, clock=FakeClock())
        with pytest.raises(ValueError):
            ctl.request(-1)
