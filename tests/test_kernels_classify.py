"""Vector-versus-scalar kernel equivalence (the transparency contract).

The vector backend must make the *same decisions in the same order* as
the paper-literal scalar loops — not merely produce a correct partition.
These tests fuzz that contract three ways:

* full-run equality on random graphs, for all five algorithms: labels,
  iteration counts and every counted I/O figure must match exactly;
* batch-level equality on a shared tree: both backends applied to the
  same pair batch must leave identical structures behind;
* helper-kernel equality (``compact_pairs``, ``absorb_members``).
"""

from __future__ import annotations

import copy

import numpy as np
import pytest

from repro import compute_sccs
from repro.core import ALGORITHMS
from repro.exceptions import NonTermination
from repro.core.one_phase import OnePhaseSCC
from repro.core.validate import partitions_equal
from repro.graph.digraph import Digraph
from repro.inmemory.tarjan import tarjan_scc
from repro.kernels import (
    DEFAULT_KERNELS,
    KERNELS,
    ScalarKernels,
    VectorKernels,
    resolve_kernels,
)
from repro.spanning.tree import ContractibleTree
from repro.spanning.unionfind import DisjointSet

from tests.conftest import SMALL_BLOCK


def random_graph(seed: int, n: int = 60, m: int = 240) -> Digraph:
    rng = np.random.default_rng(seed)
    return Digraph(n, rng.integers(0, n, size=(m, 2)))


class TestResolve:
    def test_default_is_vector(self):
        assert DEFAULT_KERNELS == "vector"
        assert isinstance(resolve_kernels(), VectorKernels)

    def test_names_round_trip(self):
        for name, cls in KERNELS.items():
            assert isinstance(resolve_kernels(name), cls)

    def test_instances_pass_through(self):
        kernel = ScalarKernels()
        assert resolve_kernels(kernel) is kernel

    def test_unknown_name_is_a_value_error(self):
        with pytest.raises(ValueError, match="scalar.*vector"):
            resolve_kernels("simd")


class TestFullRunEquivalence:
    """Same labels, same iterations, same counted I/O — per algorithm."""

    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    @pytest.mark.parametrize("seed", [0, 1])
    def test_vector_matches_scalar(self, algorithm, seed, tmp_path):
        graph = random_graph(seed)
        truth, _ = tarjan_scc(graph)
        results = {}
        for kernels in ("vector", "scalar"):
            workdir = tmp_path / f"{kernels}-{seed}"
            workdir.mkdir()
            try:
                results[kernels] = compute_sccs(
                    graph,
                    algorithm=algorithm,
                    block_size=SMALL_BLOCK,
                    workdir=str(workdir),
                    kernels=kernels,
                )
            except NonTermination as failure:
                # EM-SCC legitimately DNFs when contraction stalls (the
                # paper's Section 4 failure modes); transparency then
                # demands both backends stall at the same iteration.
                results[kernels] = failure
        vector, scalar = results["vector"], results["scalar"]
        if isinstance(vector, NonTermination) or isinstance(scalar, NonTermination):
            assert str(vector) == str(scalar)
            return
        assert partitions_equal(vector.labels, scalar.labels)
        assert partitions_equal(vector.labels, truth)
        assert vector.stats.iterations == scalar.stats.iterations
        assert vector.stats.io.reads == scalar.stats.io.reads
        assert vector.stats.io.writes == scalar.stats.io.writes
        assert vector.stats.io.bytes_read == scalar.stats.io.bytes_read
        assert vector.stats.io.bytes_written == scalar.stats.io.bytes_written

    def test_dense_cyclic_graph(self, tmp_path):
        # A near-clique drives heavy contraction — the mutation-rich
        # regime where stale snapshots are most dangerous.
        n = 24
        edges = [(u, (u + 1) % n) for u in range(n)]
        edges += [(u, (u + 7) % n) for u in range(n)]
        edges += [((u + 3) % n, u) for u in range(n)]
        graph = Digraph(n, np.array(edges))
        runs = []
        for kernels in ("vector", "scalar"):
            workdir = tmp_path / kernels
            workdir.mkdir()
            runs.append(
                compute_sccs(
                    graph,
                    algorithm="1P-SCC",
                    block_size=SMALL_BLOCK,
                    workdir=str(workdir),
                    kernels=kernels,
                )
            )
        assert partitions_equal(runs[0].labels, runs[1].labels)
        assert runs[0].stats.iterations == runs[1].stats.iterations


class TestBatchLevelEquivalence:
    """Both backends leave the same tree behind, batch by batch."""

    @pytest.mark.parametrize("seed", [3, 4, 5, 6])
    def test_one_phase_scan_same_trajectory(self, seed):
        rng = np.random.default_rng(seed)
        n = 40
        scalar_tree = ContractibleTree(n)
        vector_tree = ContractibleTree(n)
        scalar_kernel = ScalarKernels()
        vector_kernel = VectorKernels()
        # Force frequent oracle refreshes so both the snapshot fast path
        # and the dirty fallback are exercised within each batch.
        for batch_index in range(12):
            batch = rng.integers(0, n, size=(30, 2)).astype(np.uint32)
            scalar_pairs = OnePhaseSCC._candidates(scalar_tree, batch)
            vector_pairs = OnePhaseSCC._candidates(vector_tree, batch)
            assert np.array_equal(scalar_pairs, vector_pairs)
            if scalar_pairs.shape[0] == 0:
                continue
            got_s = scalar_kernel.one_phase_scan(scalar_tree, scalar_pairs)
            got_v = vector_kernel.one_phase_scan(vector_tree, vector_pairs)
            assert got_s == got_v, f"batch {batch_index}"
            assert np.array_equal(scalar_tree.parent, vector_tree.parent)
            assert np.array_equal(scalar_tree.depth, vector_tree.depth)
            assert np.array_equal(scalar_tree.live, vector_tree.live)
            assert np.array_equal(
                scalar_tree.ds.find_many(np.arange(n, dtype=np.int64)),
                vector_tree.ds.find_many(np.arange(n, dtype=np.int64)),
            )
        counters = vector_kernel.drain_counters()
        assert counters.get("kernel-fast-path", 0) > 0

    def test_scan_on_copied_tree_is_deterministic(self):
        rng = np.random.default_rng(9)
        n = 30
        tree = ContractibleTree(n)
        warmup = OnePhaseSCC._candidates(
            tree, rng.integers(0, n, size=(40, 2)).astype(np.uint32)
        )
        VectorKernels().one_phase_scan(tree, warmup)
        clone = copy.deepcopy(tree)
        batch = rng.integers(0, n, size=(40, 2)).astype(np.uint32)
        pairs = OnePhaseSCC._candidates(tree, batch)
        got_a = VectorKernels().one_phase_scan(tree, pairs)
        got_b = ScalarKernels().one_phase_scan(
            clone, OnePhaseSCC._candidates(clone, batch)
        )
        assert got_a == got_b
        assert np.array_equal(tree.parent, clone.parent)


class TestHelperKernels:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_compact_pairs_equivalence(self, seed):
        rng = np.random.default_rng(seed)
        us = rng.integers(0, 10_000, size=200)
        vs = rng.integers(0, 10_000, size=200)
        nodes_v, edges_v = VectorKernels().compact_pairs(us, vs)
        nodes_s, edges_s = ScalarKernels().compact_pairs(us, vs)
        assert np.array_equal(nodes_v, nodes_s)
        assert np.array_equal(edges_v, edges_s)
        # The remapping must invert back to the original endpoints.
        assert np.array_equal(nodes_v[edges_v[:, 0]], us)
        assert np.array_equal(nodes_v[edges_v[:, 1]], vs)

    def test_compact_pairs_empty(self):
        empty = np.empty(0, dtype=np.int64)
        nodes, edges = VectorKernels().compact_pairs(empty, empty)
        assert nodes.shape == (0,) and edges.shape[0] == 0

    def test_absorb_members_equivalence(self):
        for kernel_cls in (VectorKernels, ScalarKernels):
            ds = DisjointSet(8)
            live = np.ones(8, dtype=bool)
            merged = kernel_cls().absorb_members(
                ds, live, np.array([3, 5, 6], dtype=np.int64), 2
            )
            assert merged == 3
            assert ds.set_size(2) == 4
            assert not live[3] and not live[5] and not live[6]
            assert live[2]


class TestCounterPlumbing:
    def test_run_reports_kernel_counters(self, tmp_path):
        graph = random_graph(11)
        kernel = VectorKernels()
        result = compute_sccs(
            graph,
            algorithm="1P-SCC",
            block_size=SMALL_BLOCK,
            workdir=str(tmp_path),
            kernels=None if kernel is None else kernel,
        )
        assert result.num_sccs > 0
        # Counters were drained into the tracer scan spans by the run.
        assert kernel.drain_counters() == {}

    def test_bump_ignores_zero(self):
        kernel = ScalarKernels()
        kernel.bump("kernel-scalar-edges", 0)
        assert kernel.drain_counters() == {}
        kernel.bump("kernel-scalar-edges", 3)
        kernel.bump("kernel-scalar-edges", 2)
        assert kernel.drain_counters() == {"kernel-scalar-edges": 5}
        assert kernel.drain_counters() == {}
