"""Tests for the real-dataset stand-ins."""

import numpy as np
import pytest

from repro.core.validate import partitions_equal
from repro.graph.properties import scc_profile
from repro.inmemory.condensation import condense
from repro.inmemory.tarjan import tarjan_scc
from repro.workloads.realworld import (
    REAL_DATASET_STATS,
    cit_patents_like,
    citeseerx_like,
    go_uniprot_like,
    webspam_like,
)

SMALL = 3e-4  # keep the suite fast


class TestCitationGraphs:
    @pytest.mark.parametrize(
        "factory,name",
        [
            (cit_patents_like, "cit-patents"),
            (go_uniprot_like, "go-uniprot"),
            (citeseerx_like, "citeseerx"),
        ],
    )
    def test_scaled_sizes_match_published_stats(self, factory, name):
        g = factory(scale=SMALL, seed=0)
        nodes, edges = REAL_DATASET_STATS[name]
        expected_nodes = max(1000, int(round(nodes * SMALL)))
        assert g.num_nodes == expected_nodes
        # Degree should match the published average within 15 %
        # (the +10 % random edges push it slightly above).
        degree = g.num_edges / g.num_nodes
        published = edges / nodes
        assert published * 0.95 <= degree <= published * 1.25

    def test_extra_edges_create_sccs(self):
        """The paper adds 10% random edges precisely to create SCCs."""
        g = cit_patents_like(scale=SMALL, seed=1)
        _, count = tarjan_scc(g)
        assert count < g.num_nodes  # at least one non-trivial SCC

    def test_reproducible(self):
        assert cit_patents_like(scale=SMALL, seed=2) == cit_patents_like(
            scale=SMALL, seed=2
        )


class TestWebspam:
    def test_scc_profile_matches_paper_shape(self):
        planted = webspam_like(scale=2e-4, seed=0, avg_degree=8)
        condensed = condense(planted.graph, planted.labels,
                             int(planted.labels.max()) + 1)
        profile = scc_profile(condensed.sizes)
        n = planted.graph.num_nodes
        # Giant SCC ~64.8 % of nodes; ~80 % of nodes in some SCC.
        assert abs(profile.largest_scc_size / n - 0.648) < 0.02
        assert abs(profile.nodes_in_nontrivial_sccs / n - 0.798) < 0.02
        assert profile.second_largest_scc_size < 0.01 * n

    def test_ground_truth_labels(self):
        planted = webspam_like(scale=1e-4, seed=1, avg_degree=6)
        truth, _ = tarjan_scc(planted.graph)
        assert partitions_equal(truth, planted.labels)

    def test_degree_override(self):
        planted = webspam_like(scale=1e-4, seed=2, avg_degree=5)
        degree = planted.graph.num_edges / planted.graph.num_nodes
        assert abs(degree - 5) < 1.0
