"""Tests for partition comparison and validation helpers."""

import numpy as np
import pytest

from repro.core.validate import (
    canonical_partition,
    partitions_equal,
    validate_against_tarjan,
)
from repro.exceptions import ValidationError
from repro.graph.digraph import Digraph


class TestCanonicalPartition:
    def test_first_appearance_order(self):
        assert canonical_partition(np.array([5, 5, 2, 9])).tolist() == [0, 0, 1, 2]

    def test_idempotent(self):
        labels = np.array([3, 1, 3, 2])
        once = canonical_partition(labels)
        assert np.array_equal(canonical_partition(once), once)


class TestPartitionsEqual:
    def test_equal_up_to_renaming(self):
        assert partitions_equal(np.array([0, 0, 1]), np.array([7, 7, 3]))

    def test_different_groupings(self):
        assert not partitions_equal(np.array([0, 0, 1]), np.array([0, 1, 1]))

    def test_shape_mismatch(self):
        assert not partitions_equal(np.array([0]), np.array([0, 1]))

    def test_finer_partition_not_equal(self):
        assert not partitions_equal(np.array([0, 0, 0]), np.array([0, 0, 1]))


class TestValidateAgainstTarjan:
    def test_accepts_correct_labels(self):
        g = Digraph(3, np.array([[0, 1], [1, 0]]))
        validate_against_tarjan(g, np.array([9, 9, 4]))

    def test_rejects_wrong_labels(self):
        g = Digraph(3, np.array([[0, 1], [1, 0]]))
        with pytest.raises(ValidationError):
            validate_against_tarjan(g, np.array([0, 1, 2]))
