"""Tests for partition comparison and validation helpers."""

import numpy as np
import pytest

from repro.core.validate import (
    canonical_partition,
    certify_scc_partition,
    partitions_equal,
    validate_against_tarjan,
)
from repro.exceptions import ValidationError
from repro.graph.digraph import Digraph


class TestCanonicalPartition:
    def test_first_appearance_order(self):
        assert canonical_partition(np.array([5, 5, 2, 9])).tolist() == [0, 0, 1, 2]

    def test_idempotent(self):
        labels = np.array([3, 1, 3, 2])
        once = canonical_partition(labels)
        assert np.array_equal(canonical_partition(once), once)


class TestPartitionsEqual:
    def test_equal_up_to_renaming(self):
        assert partitions_equal(np.array([0, 0, 1]), np.array([7, 7, 3]))

    def test_different_groupings(self):
        assert not partitions_equal(np.array([0, 0, 1]), np.array([0, 1, 1]))

    def test_shape_mismatch(self):
        assert not partitions_equal(np.array([0]), np.array([0, 1]))

    def test_finer_partition_not_equal(self):
        assert not partitions_equal(np.array([0, 0, 0]), np.array([0, 0, 1]))


class TestCertifyEdgeCases:
    """Degenerate inputs for the certifying checker."""

    def test_empty_graph(self):
        certify_scc_partition(Digraph(0, np.empty((0, 2), dtype=np.int64)), np.array([]))

    def test_single_node_no_edges(self):
        certify_scc_partition(
            Digraph(1, np.empty((0, 2), dtype=np.int64)), np.array([0])
        )

    def test_single_node_self_loop(self):
        certify_scc_partition(Digraph(1, np.array([[0, 0]])), np.array([0]))

    def test_all_singleton_partition_on_dag(self):
        g = Digraph(4, np.array([[0, 1], [1, 2], [2, 3]]))
        certify_scc_partition(g, np.array([0, 1, 2, 3]))

    def test_rejects_wrong_partition_with_same_group_count(self):
        # Two 2-cycles: 0↔1 and 2↔3.  The labeling [0, 1, 0, 1] also has
        # two groups, but {0, 2} and {1, 3} are not strongly connected —
        # group-count agreement alone must not certify.
        g = Digraph(4, np.array([[0, 1], [1, 0], [2, 3], [3, 2]]))
        certify_scc_partition(g, np.array([0, 0, 1, 1]))
        with pytest.raises(ValidationError):
            certify_scc_partition(g, np.array([0, 1, 0, 1]))

    def test_rejects_merged_groups(self):
        # Merging two mutually unreachable cycles into one group breaks
        # the strong-connectivity condition.
        g = Digraph(4, np.array([[0, 1], [1, 0], [2, 3], [3, 2]]))
        with pytest.raises(ValidationError):
            certify_scc_partition(g, np.array([0, 0, 0, 0]))

    def test_rejects_split_cycle(self):
        # Splitting a 3-cycle makes the quotient graph cyclic.
        g = Digraph(3, np.array([[0, 1], [1, 2], [2, 0]]))
        with pytest.raises(ValidationError):
            certify_scc_partition(g, np.array([0, 0, 1]))

    def test_rejects_wrong_length_labels(self):
        g = Digraph(3, np.array([[0, 1]]))
        with pytest.raises(ValidationError, match="every node"):
            certify_scc_partition(g, np.array([0, 1]))


class TestValidateAgainstTarjan:
    def test_accepts_correct_labels(self):
        g = Digraph(3, np.array([[0, 1], [1, 0]]))
        validate_against_tarjan(g, np.array([9, 9, 4]))

    def test_rejects_wrong_labels(self):
        g = Digraph(3, np.array([[0, 1], [1, 0]]))
        with pytest.raises(ValidationError):
            validate_against_tarjan(g, np.array([0, 1, 2]))
