"""Smoke tests: every example script runs to completion."""

import os
import subprocess
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples")


def run_example(name, *args, timeout=300):
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "All five algorithms agree" in out
    assert out.count("6 SCCs") == 5


def test_webgraph_analysis():
    out = run_example("webgraph_analysis.py", "5e-5")
    assert "SCC profile" in out
    assert "biggest SCC" in out


def test_io_model_demo():
    out = run_example("io_model_demo.py")
    assert "memory sweep" in out
    assert "block reads" in out


def test_reachability_queries():
    out = run_example("reachability_queries.py")
    assert "sample queries" in out
    assert "True" in out and "False" in out


def test_bisimulation_pipeline():
    out = run_example("bisimulation_pipeline.py")
    assert "bisimulation classes" in out


def test_external_pipeline():
    out = run_example("external_pipeline.py")
    assert "total block I/Os" in out
    assert "[1] 1PB-SCC" in out and "[3] topo sort" in out


def test_compare_algorithms_with_tight_budget():
    out = run_example("compare_algorithms.py", "5")
    assert "Time" in out and "1PB-SCC" in out
    # DFS-SCC either finishes or shows the paper's INF marker.
    assert "DFS-SCC" in out
