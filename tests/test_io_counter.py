"""Unit tests for the I/O accounting layer."""

import pytest

from repro.io.counter import IOCounter, IOStats


class TestIOStats:
    def test_defaults_are_zero(self):
        stats = IOStats()
        assert stats.total == 0
        assert stats.reads == 0
        assert stats.writes == 0

    def test_total_combines_all_categories(self):
        stats = IOStats(seq_reads=2, seq_writes=3, rand_reads=5, rand_writes=7)
        assert stats.reads == 7
        assert stats.writes == 10
        assert stats.total == 17

    def test_subtraction_diffs_each_field(self):
        after = IOStats(seq_reads=10, bytes_read=100)
        before = IOStats(seq_reads=4, bytes_read=40)
        diff = after - before
        assert diff.seq_reads == 6
        assert diff.bytes_read == 60

    def test_addition_accumulates(self):
        a = IOStats(seq_reads=1, rand_writes=2)
        b = IOStats(seq_reads=3, rand_writes=4)
        total = a + b
        assert total.seq_reads == 4
        assert total.rand_writes == 6

    def test_copy_is_independent(self):
        stats = IOStats(seq_reads=1)
        clone = stats.copy()
        clone.seq_reads = 99
        assert stats.seq_reads == 1


class TestIOCounter:
    def test_record_read_sequential(self):
        counter = IOCounter()
        counter.record_read(3, 3000)
        assert counter.stats.seq_reads == 3
        assert counter.stats.rand_reads == 0
        assert counter.stats.bytes_read == 3000

    def test_record_read_random(self):
        counter = IOCounter()
        counter.record_read(2, 128, sequential=False)
        assert counter.stats.rand_reads == 2
        assert counter.stats.seq_reads == 0

    def test_record_write_categories(self):
        counter = IOCounter()
        counter.record_write(1, 10)
        counter.record_write(1, 10, sequential=False)
        assert counter.stats.seq_writes == 1
        assert counter.stats.rand_writes == 1
        assert counter.stats.bytes_written == 20

    def test_negative_quantities_rejected(self):
        counter = IOCounter()
        with pytest.raises(ValueError):
            counter.record_read(-1, 0)
        with pytest.raises(ValueError):
            counter.record_write(0, -5)

    def test_snapshot_and_since(self):
        counter = IOCounter()
        counter.record_read(5, 500)
        snap = counter.snapshot()
        counter.record_read(2, 200)
        delta = counter.since(snap)
        assert delta.seq_reads == 2
        assert delta.bytes_read == 200

    def test_snapshot_is_frozen(self):
        counter = IOCounter()
        snap = counter.snapshot()
        counter.record_write(9, 900)
        assert snap.total == 0

    def test_reset(self):
        counter = IOCounter()
        counter.record_read(1, 1)
        counter.reset()
        assert counter.stats.total == 0
