"""Unit tests for the I/O accounting layer."""

import pytest

from repro.io.counter import IOCounter, IOStats


class TestIOStats:
    def test_defaults_are_zero(self):
        stats = IOStats()
        assert stats.total == 0
        assert stats.reads == 0
        assert stats.writes == 0

    def test_total_combines_all_categories(self):
        stats = IOStats(seq_reads=2, seq_writes=3, rand_reads=5, rand_writes=7)
        assert stats.reads == 7
        assert stats.writes == 10
        assert stats.total == 17

    def test_subtraction_diffs_each_field(self):
        after = IOStats(seq_reads=10, bytes_read=100)
        before = IOStats(seq_reads=4, bytes_read=40)
        diff = after - before
        assert diff.seq_reads == 6
        assert diff.bytes_read == 60

    def test_addition_accumulates(self):
        a = IOStats(seq_reads=1, rand_writes=2)
        b = IOStats(seq_reads=3, rand_writes=4)
        total = a + b
        assert total.seq_reads == 4
        assert total.rand_writes == 6

    def test_copy_is_independent(self):
        stats = IOStats(seq_reads=1)
        clone = stats.copy()
        clone.seq_reads = 99
        assert stats.seq_reads == 1

    def test_subtraction_diffs_newer_fields(self):
        after = IOStats(
            cache_hits=9, cache_misses=4, prefetched=12,
            prefetch_stalls=5, io_retries=3, faults_injected=2,
        )
        before = IOStats(
            cache_hits=3, cache_misses=1, prefetched=8,
            prefetch_stalls=2, io_retries=1, faults_injected=2,
        )
        diff = after - before
        assert diff.cache_hits == 6
        assert diff.cache_misses == 3
        assert diff.prefetched == 4
        assert diff.prefetch_stalls == 3
        assert diff.io_retries == 2
        assert diff.faults_injected == 0

    def test_addition_accumulates_newer_fields(self):
        a = IOStats(prefetched=2, prefetch_stalls=1, io_retries=4,
                    faults_injected=1, cache_hits=7)
        b = IOStats(prefetched=3, prefetch_stalls=2, io_retries=1,
                    faults_injected=5, cache_misses=2)
        total = a + b
        assert total.prefetched == 5
        assert total.prefetch_stalls == 3
        assert total.io_retries == 5
        assert total.faults_injected == 6
        assert total.cache_hits == 7
        assert total.cache_misses == 2

    def test_newer_fields_do_not_inflate_total(self):
        stats = IOStats(
            seq_reads=2, cache_hits=100, prefetched=50,
            prefetch_stalls=25, io_retries=10, faults_injected=10,
        )
        assert stats.total == 2

    def test_copy_preserves_newer_fields_independently(self):
        stats = IOStats(prefetch_stalls=3, io_retries=2, faults_injected=1)
        clone = stats.copy()
        clone.prefetch_stalls = 99
        clone.io_retries = 99
        clone.faults_injected = 99
        assert (stats.prefetch_stalls, stats.io_retries,
                stats.faults_injected) == (3, 2, 1)

    def test_dict_round_trip_keeps_newer_fields(self):
        stats = IOStats(
            seq_reads=1, bytes_read=100, prefetched=4,
            prefetch_stalls=2, io_retries=3, faults_injected=1,
        )
        restored = IOStats.from_dict(stats.to_dict())
        assert restored == stats

    def test_to_dict_elides_zero_additive_fields(self):
        payload = IOStats(seq_reads=1, bytes_read=100).to_dict()
        for key in ("cache_hits", "cache_misses", "prefetched",
                    "prefetch_stalls", "io_retries", "faults_injected"):
            assert key not in payload


class TestIOCounter:
    def test_record_read_sequential(self):
        counter = IOCounter()
        counter.record_read(3, 3000)
        assert counter.stats.seq_reads == 3
        assert counter.stats.rand_reads == 0
        assert counter.stats.bytes_read == 3000

    def test_record_read_random(self):
        counter = IOCounter()
        counter.record_read(2, 128, sequential=False)
        assert counter.stats.rand_reads == 2
        assert counter.stats.seq_reads == 0

    def test_record_write_categories(self):
        counter = IOCounter()
        counter.record_write(1, 10)
        counter.record_write(1, 10, sequential=False)
        assert counter.stats.seq_writes == 1
        assert counter.stats.rand_writes == 1
        assert counter.stats.bytes_written == 20

    def test_negative_quantities_rejected(self):
        counter = IOCounter()
        with pytest.raises(ValueError):
            counter.record_read(-1, 0)
        with pytest.raises(ValueError):
            counter.record_write(0, -5)

    def test_snapshot_and_since(self):
        counter = IOCounter()
        counter.record_read(5, 500)
        snap = counter.snapshot()
        counter.record_read(2, 200)
        delta = counter.since(snap)
        assert delta.seq_reads == 2
        assert delta.bytes_read == 200

    def test_snapshot_is_frozen(self):
        counter = IOCounter()
        snap = counter.snapshot()
        counter.record_write(9, 900)
        assert snap.total == 0

    def test_reset(self):
        counter = IOCounter()
        counter.record_read(1, 1)
        counter.reset()
        assert counter.stats.total == 0
