"""Unit tests for ``trace diff``: alignment, exclusive attribution, CLI."""

from repro.io.counter import IOStats
from repro.obs.diff import diff_traces, index_spans, render_diff
from repro.obs.trace import TraceData
from repro.obs.tracer import Span


def _trace(spans, algorithm="2P-SCC"):
    return TraceData(
        header={"schema_version": 1, "metadata": {"algorithm": algorithm}},
        spans=spans,
        summary=None,
    )


def _span(name, span_id, parent_id, depth, start, wall, reads,
          iteration=None, **io_extra):
    attributes = {} if iteration is None else {"iteration": iteration}
    return Span(
        name=name, span_id=span_id, parent_id=parent_id, depth=depth,
        attributes=attributes, start_seconds=start, wall_seconds=wall,
        io=IOStats(seq_reads=reads, bytes_read=reads * 4096, **io_extra),
    )


def _run_trace(scan2_wall=1.0, scan2_reads=10, scan2_stalls=0):
    """A three-iteration run; iteration 2's scan is the plantable slot.

    run (root) > iteration[i1..i3] > fwd-scan[iN]; parent wall/io are
    inclusive of children, as the trace schema specifies.
    """
    spans = []
    total_wall, total_reads = 0.0, 0
    clock = 0.0
    next_id = 2
    for i in (1, 2, 3):
        wall = scan2_wall if i == 2 else 1.0
        reads = scan2_reads if i == 2 else 10
        stalls = scan2_stalls if i == 2 else 0
        scan = _span("fwd-scan", next_id, next_id + 1, 2, clock + 0.05,
                     wall, reads, iteration=i, prefetch_stalls=stalls,
                     prefetched=stalls)
        outer = _span("iteration", next_id + 1, 1, 1, clock,
                      wall + 0.1, reads, iteration=i)
        spans.extend([scan, outer])
        next_id += 2
        clock += wall + 0.1
        total_wall += wall + 0.1
        total_reads += reads
    spans.append(_span("run", 1, None, 0, 0.0, total_wall + 0.2,
                       total_reads))
    return _trace(spans)


class TestIndexSpans:
    def test_paths_chain_name_and_iteration(self):
        index = index_spans(_run_trace())
        assert "run" in index
        assert "run/iteration[i2]/fwd-scan[i2]" in index

    def test_repeated_siblings_get_occurrence_suffixes(self):
        spans = [
            _span("run", 1, None, 0, 0.0, 3.0, 30),
            _span("pass", 2, 1, 1, 0.1, 1.0, 10),
            _span("pass", 3, 1, 1, 1.2, 1.0, 10),
        ]
        index = index_spans(_trace(spans))
        assert "run/pass" in index
        assert "run/pass#2" in index

    def test_exclusive_costs_subtract_direct_children(self):
        index = index_spans(_run_trace())
        root = index["run"]
        # root wall 3.5 inclusive, children (iterations) take 3.3
        assert abs(root.self_wall - 0.2) < 1e-9
        assert root.self_io.total == 0  # all reads happened in the scans
        leaf = index["run/iteration[i2]/fwd-scan[i2]"]
        assert leaf.self_io.seq_reads == 10


class TestDiffTraces:
    def test_identical_traces_have_no_regression(self):
        diff = diff_traces(_run_trace(), _run_trace())
        assert diff.top_wall_regression() is None
        assert diff.top_io_regression() is None
        assert not diff.only_a and not diff.only_b

    def test_planted_wall_slowdown_is_localised_to_the_leaf(self):
        baseline = _run_trace()
        slowed = _run_trace(scan2_wall=5.0)
        diff = diff_traces(baseline, slowed)
        top = diff.top_wall_regression()
        assert top is not None
        assert top.path == "run/iteration[i2]/fwd-scan[i2]"
        assert abs(top.wall_delta - 4.0) < 1e-9
        # exclusive attribution keeps the ancestors innocent
        blamed = {d.path for d in diff.matched if d.wall_delta > 1e-9}
        assert blamed == {"run/iteration[i2]/fwd-scan[i2]"}

    def test_planted_io_regression_is_localised(self):
        diff = diff_traces(_run_trace(), _run_trace(scan2_reads=50))
        top = diff.top_io_regression()
        assert top is not None
        assert top.path == "run/iteration[i2]/fwd-scan[i2]"
        assert top.blocks_delta == 40

    def test_behaviour_notes_surface_prefetch_stalls(self):
        diff = diff_traces(_run_trace(), _run_trace(scan2_stalls=7))
        delta = {d.path: d for d in diff.matched}[
            "run/iteration[i2]/fwd-scan[i2]"
        ]
        assert any("prefetch stalls +7" in note
                   for note in delta.behaviour_notes())

    def test_extra_iteration_lands_in_only_b(self):
        baseline = _run_trace()
        extra = _run_trace()
        extra.spans.insert(
            0, _span("fwd-scan", 90, 91, 2, 9.0, 1.0, 10, iteration=4)
        )
        extra.spans.insert(
            1, _span("iteration", 91, 1, 1, 9.0, 1.1, 10, iteration=4)
        )
        diff = diff_traces(baseline, extra)
        assert "run/iteration[i4]" in diff.only_b
        assert "run/iteration[i4]/fwd-scan[i4]" in diff.only_b
        assert diff.only_a == []


class TestRenderDiff:
    def test_report_names_the_planted_phase_in_the_verdict(self):
        diff = diff_traces(_run_trace(), _run_trace(scan2_wall=5.0))
        report = render_diff(diff, label_a="base", label_b="cand")
        assert "verdict: biggest slowdown is run/iteration[i2]/fwd-scan[i2]" \
            in report
        assert "totals:" in report

    def test_limit_truncates_the_ranking(self):
        baseline = _run_trace()
        slowed = _run_trace(scan2_wall=5.0, scan2_reads=50)
        report = render_diff(diff_traces(baseline, slowed), limit=1)
        assert "more changed spans" not in report or "..." in report


class TestTraceDiffCLI:
    def test_cli_diff_localises_a_real_planted_slowdown(self, tmp_path,
                                                        capsys):
        import json
        import time

        from repro.cli import main
        from repro.graph.digraph import Digraph
        from repro.graph.diskgraph import DiskGraph
        from repro.io.counter import IOCounter

        # Two real traced runs of the same workload; the candidate's
        # second iteration is slowed by a patched scan hook.
        from repro.core import ALGORITHMS
        from repro.obs import TraceWriter, Tracer

        n = 96
        edges = [(i, (i + 1) % n) for i in range(n)]
        edges += [(i, (i * 7) % n) for i in range(n)]

        def traced_run(path, slow):
            disk = DiskGraph.from_digraph(
                Digraph(n, edges), str(tmp_path / "g.bin"), block_size=256
            )
            algo = ALGORITHMS["1P-SCC"]()
            writer = TraceWriter(str(path), metadata={"algorithm": "1P-SCC"})
            tracer = Tracer(sink=writer)
            if slow:
                original = tracer._start

                def delayed(name, attributes):
                    span = original(name, attributes)
                    if (name == "edge-scan"
                            and attributes.get("iteration") == 1):
                        time.sleep(0.08)
                    return span

                tracer._start = delayed
            try:
                algo.run(disk, tracer=tracer)
            finally:
                writer.close()
                disk.unlink()

        base = tmp_path / "base.jsonl"
        cand = tmp_path / "cand.jsonl"
        traced_run(base, slow=False)
        traced_run(cand, slow=True)
        assert main(["trace", "diff", str(base), str(cand)]) == 0
        out = capsys.readouterr().out
        assert "verdict: biggest slowdown is" in out
        verdict = [line for line in out.splitlines()
                   if line.startswith("verdict:")][0]
        assert "edge-scan[i1]" in verdict

    def test_cli_diff_missing_file_fails(self, tmp_path, capsys):
        from repro.cli import main

        missing = str(tmp_path / "nope.jsonl")
        assert main(["trace", "diff", missing, missing]) == 1
        assert "error" in capsys.readouterr().err
