"""The crash-consistent replace protocol (repro.io.atomic).

Covers the manifest lifecycle of ``replace_file`` / ``abort_replace`` /
``recover_staging``, the routing of :meth:`EdgeFile.rewrite` through
that protocol, and the regression the page cache demands: an *aborted*
rewrite (torn write, failing batch producer) must leave neither stale
cached payloads nor a staging file behind — the reopened file serves
the original bytes.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.io.atomic import (
    abort_replace,
    manifest_path,
    recover_staging,
    replace_file,
)
from repro.io.counter import IOCounter
from repro.io.edgefile import EdgeFile
from repro.io.faults import FaultInjector, FaultPlan, TornWriteError
from repro.io.prefetch import PageCache

from tests.conftest import SMALL_BLOCK


def _write(path, data: bytes) -> None:
    with open(path, "wb") as handle:
        handle.write(data)


class TestReplaceProtocol:
    def test_replace_swaps_and_removes_manifest(self, tmp_path):
        target = str(tmp_path / "data.bin")
        staging = target + ".staging"
        _write(target, b"old")
        _write(staging, b"new")
        replace_file(staging, target)
        with open(target, "rb") as handle:
            assert handle.read() == b"new"
        assert not os.path.exists(staging)
        assert not os.path.exists(manifest_path(target))

    def test_replace_onto_self_is_a_noop(self, tmp_path):
        target = str(tmp_path / "data.bin")
        _write(target, b"same")
        replace_file(target, target)
        with open(target, "rb") as handle:
            assert handle.read() == b"same"

    def test_abort_discards_staging_and_manifest(self, tmp_path):
        target = str(tmp_path / "data.bin")
        staging = target + ".staging"
        _write(target, b"old")
        _write(staging, b"half-written")
        _write(manifest_path(target), b"{}")
        abort_replace(staging, target)
        assert not os.path.exists(staging)
        assert not os.path.exists(manifest_path(target))
        with open(target, "rb") as handle:
            assert handle.read() == b"old"

    def test_abort_tolerates_missing_files(self, tmp_path):
        target = str(tmp_path / "data.bin")
        abort_replace(target + ".staging", target)  # nothing exists: fine

    def test_recover_staging_cleans_interrupted_swap(self, tmp_path):
        target = str(tmp_path / "data.bin")
        staging = target + ".staging"
        _write(target, b"old")
        _write(staging, b"torn")
        # Model a crash after the manifest fsync but before the rename.
        _write(
            manifest_path(target),
            ('{"staging": "%s", "target": "%s"}' % (staging, target)).encode(),
        )
        assert recover_staging(target) == staging
        assert not os.path.exists(staging)
        assert not os.path.exists(manifest_path(target))
        with open(target, "rb") as handle:
            assert handle.read() == b"old"

    def test_recover_staging_noop_without_manifest(self, tmp_path):
        assert recover_staging(str(tmp_path / "data.bin")) is None

    def test_recover_staging_survives_corrupt_manifest(self, tmp_path):
        target = str(tmp_path / "data.bin")
        _write(target, b"old")
        _write(manifest_path(target), b"not json")
        assert recover_staging(target) is None
        assert not os.path.exists(manifest_path(target))


def _edges(m: int, base: int = 0) -> np.ndarray:
    lo = np.arange(m, dtype=np.int64) + base
    return np.column_stack((lo, lo + 1))


class TestEdgeFileRewrite:
    def test_successful_rewrite_replaces_contents(self, tmp_path):
        edge_file = EdgeFile.from_array(
            str(tmp_path / "e.bin"), _edges(32), block_size=SMALL_BLOCK
        )
        edge_file.rewrite(iter([_edges(8, base=100)]))
        assert np.array_equal(edge_file.read_all(), _edges(8, base=100))
        assert not os.path.exists(edge_file.path + ".staging")
        assert not os.path.exists(manifest_path(edge_file.path))

    def test_failing_producer_restores_original(self, tmp_path):
        edge_file = EdgeFile.from_array(
            str(tmp_path / "e.bin"), _edges(32), block_size=SMALL_BLOCK
        )

        def batches():
            yield _edges(8, base=100)
            raise RuntimeError("producer died")

        with pytest.raises(RuntimeError):
            edge_file.rewrite(batches())
        assert np.array_equal(edge_file.read_all(), _edges(32))
        assert not os.path.exists(edge_file.path + ".staging")
        assert not os.path.exists(manifest_path(edge_file.path))

    def test_aborted_rewrite_invalidates_cached_blocks(self, tmp_path):
        """Regression: stale cache entries must not survive an abort.

        Scan once through the cache to populate it, then fail a rewrite
        midway: every cached payload for the target (and the staging
        sibling) describes bytes that no committed file holds, so the
        abort path must drop them and a fresh scan must re-read the
        original contents from disk.
        """
        cache = PageCache(capacity_blocks=64, block_size=SMALL_BLOCK)
        counter = IOCounter()
        original = _edges(48)
        edge_file = EdgeFile.from_array(
            str(tmp_path / "e.bin"), original,
            counter=counter, block_size=SMALL_BLOCK, cache=cache,
        )
        for _ in edge_file.scan():
            pass
        assert len(cache) > 0

        def batches():
            yield _edges(4, base=500)
            raise RuntimeError("mid-rewrite failure")

        with pytest.raises(RuntimeError):
            edge_file.rewrite(batches())
        assert len(cache) == 0
        assert np.array_equal(edge_file.read_all(), original)

    def test_torn_write_during_rewrite_aborts_cleanly(self, tmp_path):
        """Satellite regression: a torn staged block must not leak.

        The tear strikes the staging file mid-rewrite; the protocol
        discards staging + manifest, drops affected cache entries, and
        the reopened file still serves the pre-rewrite edge list.
        """
        cache = PageCache(capacity_blocks=64, block_size=SMALL_BLOCK)
        counter = IOCounter()
        original = _edges(48)
        edge_file = EdgeFile.from_array(
            str(tmp_path / "e.bin"), original,
            counter=counter, block_size=SMALL_BLOCK, cache=cache,
        )
        for _ in edge_file.scan():
            pass
        counter.fault_injector = FaultInjector(FaultPlan.parse("tear@0:8"))
        try:
            with pytest.raises(TornWriteError):
                edge_file.rewrite(iter([_edges(32, base=500)]))
        finally:
            counter.fault_injector = None
        assert len(cache) == 0
        assert not os.path.exists(edge_file.path + ".staging")
        assert not os.path.exists(manifest_path(edge_file.path))
        assert np.array_equal(edge_file.read_all(), original)
        assert counter.stats.faults_injected == 1
