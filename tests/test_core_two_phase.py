"""Tests specific to 2P-SCC: construction fixpoint and one-scan search."""

import numpy as np
import pytest

from repro.core.base import Deadline
from repro.core.two_phase import TwoPhaseSCC, tree_construction, tree_search
from repro.core.validate import partitions_equal
from repro.exceptions import AlgorithmTimeout
from repro.graph.digraph import Digraph
from repro.graph.diskgraph import DiskGraph
from repro.inmemory.tarjan import tarjan_scc

from tests.conftest import SMALL_BLOCK


def disk(tmp_path, graph, name="g.bin"):
    return DiskGraph.from_digraph(
        graph, str(tmp_path / name), block_size=SMALL_BLOCK
    )


class TestTreeConstruction:
    def test_fixpoint_has_no_actionable_up_edges(self, tmp_path):
        """At the fixpoint, no edge may still trigger a pushdown: every
        cross edge with drank(u) >= drank(v) must have dlink(v) as an
        ancestor of u (i.e. its cycle is already certified)."""
        rng = np.random.default_rng(0)
        g = Digraph(40, rng.integers(0, 40, size=(140, 2)))
        dg = disk(tmp_path, g)
        tree, _ = tree_construction(dg, Deadline("t", None))
        for u, v in g.edges.tolist():
            if u == v or tree.parent[v] == u:
                continue
            if tree.is_ancestor(u, v) or tree.is_ancestor(v, u):
                continue
            if tree.drank[u] >= tree.drank[v]:
                w = int(tree.dlink[v])
                assert tree.is_ancestor(w, u) or tree.depth[u] < tree.depth[w]
        dg.unlink()

    def test_construction_bounded_by_lemma(self, tmp_path):
        """Lemma 6.1: at most depth(G)-ish scans (we allow slack for the
        drank staleness, but it must stay far below the hard cap)."""
        rng = np.random.default_rng(1)
        g = Digraph(60, rng.integers(0, 60, size=(180, 2)))
        dg = disk(tmp_path, g)
        tree, scans = tree_construction(dg, Deadline("t", None))
        assert scans <= 60
        dg.unlink()

    def test_blinks_point_to_ancestors(self, tmp_path, figure1_graph):
        dg = disk(tmp_path, figure1_graph)
        tree, _ = tree_construction(dg, Deadline("t", None))
        for u in np.flatnonzero(tree.blink != -1).tolist():
            assert tree.is_ancestor(int(tree.blink[u]), u)
        dg.unlink()


class TestTreeSearch:
    def test_single_scan_suffices(self, tmp_path):
        """The paper's core claim: after construction, ONE scan finds all
        SCCs (Section 6.2)."""
        rng = np.random.default_rng(2)
        for seed in range(10):
            rng = np.random.default_rng(seed)
            n = int(rng.integers(10, 80))
            g = Digraph(n, rng.integers(0, n, size=(3 * n, 2)))
            dg = disk(tmp_path, g, name=f"g{seed}.bin")
            truth, _ = tarjan_scc(g)
            tree, _ = tree_construction(dg, Deadline("t", None))
            scans = tree_search(dg, tree, Deadline("t", None))
            labels, _ = tree.scc_labels()
            assert scans == 1
            assert partitions_equal(truth, labels)
            dg.unlink()


class TestTwoPhase:
    def test_memory_footprint_is_brplus(self, tmp_path, figure1_graph):
        """2P-SCC asserts the 3|V| BR+-Tree footprint."""
        from repro.exceptions import MemoryBudgetError
        from repro.io.memory import MemoryModel

        dg = disk(tmp_path, figure1_graph)
        tight = MemoryModel(num_nodes=12, capacity=4 * 2 * 12)  # only 2|V|
        with pytest.raises(MemoryBudgetError):
            TwoPhaseSCC().run(dg, memory=tight)
        dg.unlink()

    def test_timeout(self, tmp_path):
        rng = np.random.default_rng(3)
        g = Digraph(500, rng.integers(0, 500, size=(2500, 2)))
        dg = disk(tmp_path, g)
        with pytest.raises(AlgorithmTimeout):
            TwoPhaseSCC().run(dg, time_limit=0.0)
        dg.unlink()

    def test_iterations_split_reported(self, tmp_path, figure1_graph):
        dg = disk(tmp_path, figure1_graph)
        result = TwoPhaseSCC().run(dg)
        extras = result.stats.extras
        assert extras["search_scans"] == 1
        assert extras["construction_scans"] >= 1
        assert result.stats.iterations == (
            extras["construction_scans"] + extras["search_scans"]
        )
        dg.unlink()
