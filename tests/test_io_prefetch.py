"""Tests for the block prefetcher and the counted page cache.

The two contracts under test:

* **Transparency** — prefetching must be invisible to the I/O model:
  identical SCC partitions and identical *counted* block reads (count,
  byte volume, and sequential/random split) with the policy on vs off,
  for every algorithm.
* **Counted caching** — cache hits are tallied as ``cache_hits`` and
  never increment any disk-read tally; for a cache big enough to hold
  the file, ``reads_with_cache + cache_hits == reads_without_cache``.
"""

import numpy as np
import pytest
from hypothesis import given, settings

from repro import compute_sccs
from repro.core.validate import partitions_equal
from repro.exceptions import NonTermination
from repro.io.edgefile import EdgeFile
from repro.io.prefetch import BlockPrefetcher, PageCache, cache_summary

from tests.conftest import SMALL_BLOCK, random_digraphs

ALGORITHMS = ["1PB-SCC", "1P-SCC", "2P-SCC", "DFS-SCC", "EM-SCC"]

COUNTED_FIELDS = (
    "seq_reads", "seq_writes", "rand_reads", "rand_writes",
    "bytes_read", "bytes_written",
)


def edges_array(m, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 1000, size=(m, 2), dtype=np.int64)


class TestPageCache:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            PageCache(0)
        with pytest.raises(ValueError):
            PageCache(4, block_size=0)

    def test_put_get_roundtrip(self):
        cache = PageCache(4, block_size=64)
        payload = np.arange(16, dtype=np.uint32).reshape(-1, 2)
        cache.put("a.bin", 0, payload)
        assert np.array_equal(cache.get("a.bin", 0), payload)
        assert cache.get("a.bin", 1) is None
        assert cache.get("b.bin", 0) is None

    def test_lru_eviction_order(self):
        cache = PageCache(2, block_size=64)
        block = np.zeros((4, 2), dtype=np.uint32)
        cache.put("f", 0, block)
        cache.put("f", 1, block)
        cache.put("f", 2, block)  # evicts block 0
        assert cache.get("f", 0) is None
        assert cache.get("f", 1) is not None
        assert cache.get("f", 2) is not None
        assert len(cache) == 2

    def test_get_refreshes_recency(self):
        cache = PageCache(2, block_size=64)
        block = np.zeros((4, 2), dtype=np.uint32)
        cache.put("f", 0, block)
        cache.put("f", 1, block)
        cache.get("f", 0)          # 0 is now most recent
        cache.put("f", 2, block)   # evicts 1, not 0
        assert cache.get("f", 0) is not None
        assert cache.get("f", 1) is None

    def test_invalidate_single_block_and_whole_file(self):
        cache = PageCache(8, block_size=64)
        block = np.zeros((4, 2), dtype=np.uint32)
        for index in range(3):
            cache.put("f", index, block)
        cache.put("g", 0, block)
        cache.invalidate("f", 1)
        assert cache.get("f", 1) is None
        assert cache.get("f", 0) is not None
        cache.invalidate("f")
        assert len(cache) == 1
        assert cache.get("g", 0) is not None

    def test_clear_and_nbytes(self):
        cache = PageCache(8, block_size=64)
        payload = np.zeros((8, 2), dtype=np.uint32)
        cache.put("f", 0, payload)
        assert cache.nbytes == payload.nbytes
        assert "PageCache" in repr(cache)
        cache.clear()
        assert len(cache) == 0
        assert cache.nbytes == 0

    def test_cache_summary(self):
        assert cache_summary(None) == {}
        cache = PageCache(4, block_size=64)
        cache.put("f", 0, np.zeros((8, 2), dtype=np.uint32))
        summary = cache_summary(cache)
        assert summary == {
            "capacity_blocks": 4,
            "resident_blocks": 1,
            "resident_bytes": 64,
        }


class TestBlockPrefetcher:
    def _file(self, tmp_path, blocks, block_size=64):
        path = str(tmp_path / "raw.bin")
        with open(path, "wb") as handle:
            for index in range(blocks):
                handle.write(bytes([index % 251]) * block_size)
        return path

    def test_yields_blocks_in_order(self, tmp_path):
        path = self._file(tmp_path, blocks=6)
        with BlockPrefetcher(path, 64, start=0, stop=6, depth=2) as pf:
            got = list(pf)
        assert [index for index, _, _ in got] == list(range(6))
        for index, data, _ in got:
            assert data == bytes([index % 251]) * 64

    def test_respects_start_stop_range(self, tmp_path):
        path = self._file(tmp_path, blocks=6)
        with BlockPrefetcher(path, 64, start=2, stop=5, depth=3) as pf:
            indices = [index for index, _, _ in pf]
        assert indices == [2, 3, 4]

    def test_next_block_raises_eof_when_exhausted(self, tmp_path):
        path = self._file(tmp_path, blocks=1)
        with BlockPrefetcher(path, 64, start=0, stop=1, depth=1) as pf:
            pf.next_block()
            with pytest.raises(EOFError):
                pf.next_block()

    def test_partial_tail_block_delivered_short(self, tmp_path):
        path = str(tmp_path / "tail.bin")
        with open(path, "wb") as handle:
            handle.write(b"x" * 100)  # 1 full block of 64 + 36-byte tail
        with BlockPrefetcher(path, 64, start=0, stop=2, depth=2) as pf:
            got = list(pf)
        assert [len(data) for _, data, _ in got] == [64, 36]

    def test_invalid_parameters_rejected(self, tmp_path):
        path = self._file(tmp_path, blocks=1)
        with pytest.raises(ValueError):
            BlockPrefetcher(path, 64, start=0, stop=1, depth=0)
        with pytest.raises(ValueError):
            BlockPrefetcher(path, 64, start=3, stop=1, depth=1)

    def test_close_is_idempotent_and_interrupts_early(self, tmp_path):
        path = self._file(tmp_path, blocks=50)
        pf = BlockPrefetcher(path, 64, start=0, stop=50, depth=1)
        pf.next_block()
        pf.close()  # 48 blocks never consumed; must not hang
        pf.close()
        assert not pf._thread.is_alive()


class TestScanTransparency:
    """Prefetching must not change anything the I/O model counts."""

    def _edge_file(self, tmp_path, counter, prefetch_depth=0, cache=None,
                   m=100, name="edges.bin"):
        return EdgeFile.from_array(
            str(tmp_path / name),
            edges_array(m),
            counter=counter,
            block_size=SMALL_BLOCK,
            prefetch_depth=prefetch_depth,
            cache=cache,
        )

    def test_prefetched_scan_same_data_and_counts(self, tmp_path, counter):
        plain = self._edge_file(tmp_path, counter, name="plain.bin")
        before = counter.snapshot()
        plain_batches = list(plain.scan())
        plain_delta = counter.since(before)

        pre = self._edge_file(tmp_path, counter, prefetch_depth=4,
                              name="prefetched.bin")
        before = counter.snapshot()
        pre_batches = list(pre.scan())
        pre_delta = counter.since(before)

        assert len(plain_batches) == len(pre_batches)
        for lhs, rhs in zip(plain_batches, pre_batches):
            assert np.array_equal(lhs, rhs)
        for fld in COUNTED_FIELDS:
            assert getattr(pre_delta, fld) == getattr(plain_delta, fld), fld
        assert pre_delta.prefetched == pre.num_blocks
        assert plain_delta.prefetched == 0

    def test_prefetched_scan_is_counted_sequential(self, tmp_path, counter):
        ef = self._edge_file(tmp_path, counter, prefetch_depth=4)
        before = counter.snapshot()
        list(ef.scan())
        delta = counter.since(before)
        # Rewind to block 0 may count as the single random read;
        # everything after it must be sequential.
        assert delta.rand_reads <= 1
        assert delta.seq_reads >= ef.num_blocks - 1

    def test_cache_hits_never_counted_as_reads(self, tmp_path, counter):
        cache = PageCache(64, block_size=SMALL_BLOCK)
        ef = self._edge_file(tmp_path, counter, cache=cache)
        before = counter.snapshot()
        list(ef.scan())
        cold = counter.since(before)
        assert cold.cache_hits == 0
        assert cold.cache_misses == ef.num_blocks

        before = counter.snapshot()
        warm_batches = list(ef.scan())
        warm = counter.since(before)
        assert warm.reads == 0
        assert warm.bytes_read == 0
        assert warm.cache_hits == ef.num_blocks
        assert np.array_equal(
            np.concatenate(warm_batches), edges_array(100).astype(np.uint32)
        )

    def test_cache_plus_prefetch_conserves_total_reads(self, tmp_path, counter):
        plain = self._edge_file(tmp_path, counter, name="plain.bin")
        before = counter.snapshot()
        list(plain.scan())
        list(plain.scan())
        base = counter.since(before)

        cache = PageCache(64, block_size=SMALL_BLOCK)
        cached = self._edge_file(tmp_path, counter, prefetch_depth=4,
                                 cache=cache, name="cached.bin")
        before = counter.snapshot()
        list(cached.scan())
        list(cached.scan())
        delta = counter.since(before)
        assert delta.reads + delta.cache_hits == base.reads
        assert delta.reads == cached.num_blocks  # second scan fully cached

    def test_append_invalidates_stale_tail(self, tmp_path, counter):
        cache = PageCache(64, block_size=SMALL_BLOCK)
        ef = self._edge_file(tmp_path, counter, cache=cache, m=12)
        list(ef.scan())  # warm the cache (12 edges -> partial tail block)
        extra = edges_array(5, seed=9)
        ef.append(extra)
        ef.flush()
        got = np.concatenate(list(ef.scan()))
        expected = np.concatenate(
            [edges_array(12), extra]
        ).astype(np.uint32)
        assert np.array_equal(got, expected)

    def test_rewrite_invalidates_whole_file(self, tmp_path, counter):
        cache = PageCache(64, block_size=SMALL_BLOCK)
        ef = self._edge_file(tmp_path, counter, cache=cache)
        list(ef.scan())
        assert len(cache) > 0
        replacement = edges_array(20, seed=3)
        ef.rewrite([replacement])
        got = np.concatenate(list(ef.scan()))
        assert np.array_equal(got, replacement.astype(np.uint32))


class TestSimulatedDisk:
    """The opt-in latency knob slows transfers but never the tallies."""

    def _device(self, tmp_path, counter, monkeypatch, seek_ms, transfer_ms):
        from repro.io.blocks import BlockDevice
        monkeypatch.setenv("REPRO_SIM_SEEK_MS", str(seek_ms))
        monkeypatch.setenv("REPRO_SIM_TRANSFER_MS", str(transfer_ms))
        device = BlockDevice(
            str(tmp_path / "sim.bin"), counter=counter, block_size=64
        )
        for _ in range(4):
            device.append_block(b"x" * 64)
        return device

    def test_off_by_default(self, tmp_path, counter):
        from repro.io.blocks import BlockDevice
        device = BlockDevice(str(tmp_path / "d.bin"), counter=counter,
                             block_size=64)
        assert device.sim_seek_s == 0.0
        assert device.sim_transfer_s == 0.0

    def test_read_block_sleeps_counted_time(self, tmp_path, counter,
                                            monkeypatch):
        import time as time_mod
        device = self._device(tmp_path, counter, monkeypatch,
                              seek_ms=0, transfer_ms=20)
        before = counter.snapshot()
        start = time_mod.perf_counter()
        for index in range(4):
            device.read_block(index)
        elapsed = time_mod.perf_counter() - start
        assert elapsed >= 4 * 0.020
        # Latency never changes what is counted.
        assert counter.since(before).reads == 4

    def test_prefetched_read_accounting_does_not_sleep(self, tmp_path,
                                                       counter, monkeypatch):
        import time as time_mod
        device = self._device(tmp_path, counter, monkeypatch,
                              seek_ms=100, transfer_ms=100)
        start = time_mod.perf_counter()
        for index in range(4):
            device.account_prefetched_read(index, 64, stalled=False)
        elapsed = time_mod.perf_counter() - start
        assert elapsed < 0.1  # the prefetch thread pays it, not the consumer


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@settings(max_examples=8, deadline=None)
@given(graph=random_digraphs(max_nodes=25))
def test_property_prefetch_is_transparent(algorithm, graph):
    """Same partition, same counted I/O, with prefetching on vs off."""
    try:
        base = compute_sccs(graph, algorithm=algorithm, block_size=64)
    except NonTermination:
        # EM-SCC is the paper's DNF-prone baseline; transparency then
        # means the prefetched run fails identically.
        with pytest.raises(NonTermination):
            compute_sccs(graph, algorithm=algorithm, block_size=64,
                         prefetch_depth=4)
        return
    pre = compute_sccs(
        graph, algorithm=algorithm, block_size=64, prefetch_depth=4
    )
    assert partitions_equal(base.labels, pre.labels)
    for fld in COUNTED_FIELDS:
        assert getattr(pre.stats.io, fld) == getattr(base.stats.io, fld), fld


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@settings(max_examples=8, deadline=None)
@given(graph=random_digraphs(max_nodes=25))
def test_property_cache_hits_replace_reads_one_for_one(algorithm, graph):
    """With a file-sized cache, every avoided read shows up as a hit."""
    try:
        base = compute_sccs(graph, algorithm=algorithm, block_size=64)
    except NonTermination:
        with pytest.raises(NonTermination):
            compute_sccs(graph, algorithm=algorithm, block_size=64,
                         prefetch_depth=4, cache_blocks=256)
        return
    cached = compute_sccs(
        graph, algorithm=algorithm, block_size=64,
        prefetch_depth=4, cache_blocks=256,
    )
    assert partitions_equal(base.labels, cached.labels)
    assert cached.stats.io.reads + cached.stats.io.cache_hits == base.stats.io.reads
    assert cached.stats.io.reads <= base.stats.io.reads
