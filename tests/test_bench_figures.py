"""Tests for ASCII figure rendering."""

from repro.bench.figures import ascii_series_chart
from repro.bench.harness import BenchRecord


def make_records():
    return [
        BenchRecord("1PB-SCC", "w", "ok", seconds=0.1, ios=10,
                    params={"n": 100}),
        BenchRecord("DFS-SCC", "w", "INF", params={"n": 100}),
        BenchRecord("1PB-SCC", "w", "ok", seconds=1.0, ios=100,
                    params={"n": 200}),
        BenchRecord("DFS-SCC", "w", "ok", seconds=10.0, ios=1000,
                    params={"n": 200}),
    ]


class TestAsciiChart:
    def test_contains_all_groups_and_values(self):
        chart = ascii_series_chart(make_records(), "n", title="Fig")
        assert "Fig" in chart
        assert "n = 100" in chart and "n = 200" in chart
        assert "0.100s" in chart and "10.000s" in chart

    def test_failures_render_status(self):
        chart = ascii_series_chart(make_records(), "n")
        assert "INF" in chart

    def test_log_scaling_orders_bar_lengths(self):
        chart = ascii_series_chart(make_records(), "n")
        lines = [l for l in chart.splitlines() if "#" in l]
        lengths = [line.count("#") for line in lines]
        assert lengths == sorted(lengths)  # 0.1s < 1s < 10s

    def test_io_metric(self):
        chart = ascii_series_chart(make_records(), "n", metric="ios")
        assert "1,000 I/Os" in chart

    def test_empty_records(self):
        assert ascii_series_chart([], "n") == ""
