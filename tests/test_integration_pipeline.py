"""End-to-end integration tests across subsystems.

These exercise whole pipelines the way a downstream user would:
generate → store → open semi-externally → decompose → consume, with
I/O accounting checked for global consistency along the way.
"""

import numpy as np
import pytest

from repro import ALGORITHMS, DiskGraph, MemoryModel, compute_sccs
from repro.apps.reachability import ReachabilityIndex
from repro.core.validate import partitions_equal
from repro.graph.storage import open_disk_graph, save_graph
from repro.inmemory.condensation import condense
from repro.inmemory.tarjan import tarjan_scc
from repro.io.counter import IOCounter
from repro.workloads.realworld import webspam_like
from repro.workloads.synthetic import synthetic_graph


class TestStoreDecomposeConsume:
    def test_full_pipeline(self, tmp_path):
        planted = synthetic_graph(
            500, avg_degree=5, massive_sccs=[120], small_sccs=[6] * 8, seed=0
        )
        path = str(tmp_path / "g.rgr")
        save_graph(planted.graph, path)

        counter = IOCounter()
        disk = open_disk_graph(path, counter=counter)
        result = ALGORITHMS["1PB-SCC"]().run(disk)
        disk.close()

        assert partitions_equal(planted.labels, result.labels)

        index = ReachabilityIndex(planted.graph, labels=result.labels)
        members = np.flatnonzero(
            planted.labels == planted.labels[planted.graph.edges[0][0]]
        )
        a = int(members[0])
        assert index.reaches(a, a)

    def test_counter_shared_across_runs_is_monotone(self, tmp_path):
        planted = synthetic_graph(300, avg_degree=4, massive_sccs=[60], seed=1)
        path = str(tmp_path / "g.rgr")
        save_graph(planted.graph, path)
        counter = IOCounter()
        disk = open_disk_graph(path, counter=counter)

        totals = []
        for name in ("1P-SCC", "1PB-SCC", "2P-SCC"):
            ALGORITHMS[name]().run(disk)
            totals.append(counter.stats.total)
        assert totals == sorted(totals)
        assert totals[0] > 0
        disk.close()

    def test_per_run_io_diffing_isolates_runs(self, tmp_path):
        planted = synthetic_graph(300, avg_degree=4, massive_sccs=[60], seed=2)
        path = str(tmp_path / "g.rgr")
        save_graph(planted.graph, path)
        counter = IOCounter()
        disk = open_disk_graph(path, counter=counter)

        first = ALGORITHMS["1P-SCC"]().run(disk)
        second = ALGORITHMS["1P-SCC"]().run(disk)
        # Identical deterministic runs: identical per-run I/O counts,
        # even though the shared counter kept growing.
        assert first.stats.io.total == second.stats.io.total
        disk.close()


class TestScanIOConsistency:
    @pytest.mark.parametrize(
        "name", [n for n in sorted(ALGORITHMS) if n != "EM-SCC"]
    )
    def test_reads_are_multiples_of_full_scans(self, tmp_path, name):
        """Every algorithm's sequential reads decompose into whole
        passes over (possibly shrinking) edge files — never more than
        iterations * initial file blocks.  (EM-SCC is excluded: at this
        tiny block size its Case-2 non-termination fires, which is its
        own documented behaviour.)"""
        planted = synthetic_graph(400, avg_degree=4, massive_sccs=[100], seed=3)
        result = compute_sccs(
            planted.graph, algorithm=name, block_size=1024, time_limit=120
        )
        blocks = -(-planted.graph.num_edges * 8 // 1024)
        generous_bound = (result.stats.iterations + 4) * 3 * blocks
        assert result.stats.io.reads <= generous_bound


class TestMemorySweepShape:
    def test_webspam_like_iterations_shrink_with_memory(self):
        planted = webspam_like(scale=3e-5, seed=0, avg_degree=8)
        n = planted.graph.num_nodes
        base = MemoryModel.default_capacity(n)
        iterations = []
        for factor in (1, 8):
            memory = MemoryModel(num_nodes=n, capacity=base * factor)
            result = compute_sccs(
                planted.graph, algorithm="1PB-SCC", memory=memory
            )
            assert partitions_equal(planted.labels, result.labels)
            iterations.append(result.stats.iterations)
        assert iterations[1] <= iterations[0]
