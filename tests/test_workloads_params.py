"""Tests for the Table 2 parameter grid."""

import pytest

from repro.workloads.params import (
    SCC_CLASSES,
    large_scc_params,
    massive_scc_params,
    params_for_class,
    small_scc_params,
)


class TestScaling:
    def test_default_scale_shrinks_uniformly(self):
        params = massive_scc_params(scale=1e-3)
        assert params.num_nodes == 30_000
        assert params.massive_sccs == [400]

    def test_large_class_scales_size_not_count(self):
        params = large_scc_params(scale=1e-3)
        assert len(params.large_sccs) == 50  # count fixed
        assert params.large_sccs[0] == 8  # 8000 * 1e-3

    def test_small_class_scales_count_not_size(self):
        params = small_scc_params(scale=1e-3)
        assert len(params.small_sccs) == 10  # 10000 * 1e-3
        assert params.small_sccs[0] == 40  # size fixed

    def test_minimums_enforced(self):
        params = massive_scc_params(scale=1e-9)
        assert params.num_nodes >= 1000
        assert params.massive_sccs[0] >= 16


class TestDispatch:
    @pytest.mark.parametrize("scc_class", SCC_CLASSES)
    def test_params_for_class(self, scc_class):
        params = params_for_class(scc_class, scale=1e-4)
        assert params.scc_class == scc_class

    def test_unknown_class_rejected(self):
        with pytest.raises(ValueError):
            params_for_class("gigantic")


class TestBuild:
    def test_build_generates_planted_graph(self):
        params = massive_scc_params(scale=3e-5, seed=1)  # ~1000 nodes
        planted = params.build()
        assert planted.graph.num_nodes == params.num_nodes
        assert planted.num_planted == 1
