"""Regression tests for early-rejection soundness.

Randomized soak testing caught a real bug in a naive reading of
Sections 7.2/Algorithm 6: accumulating the ``drank`` window while the
scan mutates the tree mixes depths from different moments, and
rejection against that inconsistent window finalises nodes whose SCC
has not surfaced yet.  The fix measures the window during the rewrite
scan, where the tree is frozen.  These tests pin the exact failing
graphs the soak found plus the aggressive configurations that exposed
them.
"""

import numpy as np
import pytest

from repro import Digraph, compute_sccs
from repro.core.one_phase import OnePhaseSCC
from repro.core.one_phase_batch import OnePhaseBatchSCC
from repro.core.validate import partitions_equal
from repro.inmemory.tarjan import tarjan_scc

#: The two minimal counterexamples found by the soak (pre-fix, the
#: first wrongly rejected the {1, 5} SCC; the second split a giant SCC).
REGRESSION_GRAPHS = [
    (7, [[2, 5], [4, 2], [4, 2], [6, 5], [0, 2], [1, 5], [6, 6], [5, 1]]),
    (
        11,
        [
            [1, 6], [8, 0], [7, 1], [3, 0], [5, 10], [10, 1], [2, 6],
            [2, 8], [0, 7], [3, 0], [9, 5], [9, 9], [1, 0], [5, 3],
            [5, 9], [9, 5], [0, 3], [5, 9], [5, 10], [2, 5], [3, 5],
            [7, 7], [8, 10], [4, 8], [6, 4], [2, 3], [3, 3], [8, 10],
            [7, 3],
        ],
    ),
]

AGGRESSIVE = [
    OnePhaseSCC(rejection_period=1, tau_fraction=1e-9),
    OnePhaseBatchSCC(rejection_period=1, tau_fraction=1e-9, batch_blocks=1),
]


@pytest.mark.parametrize("n,edges", REGRESSION_GRAPHS)
@pytest.mark.parametrize("algorithm", AGGRESSIVE, ids=["1P", "1PB"])
def test_soak_counterexamples(n, edges, algorithm):
    graph = Digraph(n, np.array(edges))
    truth, _ = tarjan_scc(graph)
    result = compute_sccs(graph, algorithm=algorithm, block_size=64)
    assert partitions_equal(truth, result.labels)


@pytest.mark.parametrize("algorithm", AGGRESSIVE, ids=["1P", "1PB"])
def test_aggressive_rejection_mini_soak(algorithm):
    rng = np.random.default_rng(424242)
    for _ in range(60):
        n = int(rng.integers(4, 80))
        m = int(rng.integers(2, 4 * n))
        graph = Digraph(n, rng.integers(0, n, size=(m, 2)))
        truth, _ = tarjan_scc(graph)
        result = compute_sccs(graph, algorithm=algorithm, block_size=256)
        assert partitions_equal(truth, result.labels)


def test_empty_window_finalises_everything():
    """A DAG has no cycle-candidate edges at the frozen snapshot, so a
    rejection pass may finalise every live node at once."""
    n = 30
    graph = Digraph(n, np.array([[i, i + 1] for i in range(n - 1)]))
    result = compute_sccs(
        graph,
        algorithm=OnePhaseSCC(rejection_period=1),
        block_size=64,
    )
    assert result.num_sccs == n
    assert result.stats.extras["rejected_nodes"] == n
