"""Deadlines interrupt mid-scan, including the rewrite passes.

Regression tests for the deadline audit: every edge scan — including
the graph-reduction rewrites of 1P/1PB-SCC, EM-SCC's compression pass,
and Tree-Search's backward-link preamble — must poll the wall-clock
budget at least once per batch, so a stuck or oversized scan cannot
outlive its ``time_limit`` by a whole pass.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.base import Deadline
from repro.core.em_scc import EMSCC
from repro.core.one_phase import OnePhaseSCC
from repro.core.one_phase_batch import OnePhaseBatchSCC
from repro.core.two_phase import tree_construction, tree_search
from repro.exceptions import AlgorithmTimeout
from repro.graph.diskgraph import DiskGraph
from repro.spanning.tree import ContractibleTree
from repro.spanning.unionfind import DisjointSet

from tests.conftest import SMALL_BLOCK


class CountingDeadline(Deadline):
    """An unlimited deadline that tallies how often it is polled."""

    def __init__(self) -> None:
        super().__init__("test", None)
        self.checks = 0

    def check(self) -> None:
        self.checks += 1
        super().check()


def _expired() -> Deadline:
    """A deadline that is already over budget."""
    deadline = Deadline("test", 0.0)
    deadline._start -= 1.0
    return deadline


@pytest.fixture
def disk(tmp_path, figure1_graph) -> DiskGraph:
    graph = DiskGraph.from_digraph(
        figure1_graph, str(tmp_path / "fig1.bin"), block_size=SMALL_BLOCK
    )
    yield graph
    graph.close()


class TestExpiredDeadlineInterruptsRewrites:
    def test_one_phase_reduce_graph(self, disk):
        algo = OnePhaseSCC()
        tree = ContractibleTree(disk.num_nodes)
        with pytest.raises(AlgorithmTimeout):
            algo._reduce_graph(
                disk, tree, disk.edge_file, False, 1, deadline=_expired()
            )

    def test_one_phase_batch_reduce_graph(self, disk):
        n = disk.num_nodes
        with pytest.raises(AlgorithmTimeout):
            OnePhaseBatchSCC()._reduce_graph(
                disk,
                DisjointSet(n),
                np.ones(n, dtype=bool),
                np.ones(n, dtype=np.int64),
                disk.edge_file,
                False,
                1,
                deadline=_expired(),
            )

    def test_em_scc_rewrite(self, disk):
        n = disk.num_nodes
        with pytest.raises(AlgorithmTimeout):
            EMSCC()._rewrite(
                disk,
                DisjointSet(n),
                np.ones(n, dtype=bool),
                disk.edge_file,
                False,
                1,
                deadline=_expired(),
            )

    def test_tree_search_blink_preamble(self, disk):
        tree, _ = tree_construction(disk, Deadline("test", None))
        assert (tree.blink != -1).any() or disk.num_edges > 0
        with pytest.raises(AlgorithmTimeout):
            tree_search(disk, tree, _expired())


class TestChecksHappenPerBatch:
    def test_one_phase_reduce_checks_every_batch(self, disk):
        algo = OnePhaseSCC()
        tree = ContractibleTree(disk.num_nodes)
        deadline = CountingDeadline()
        reduced, owns, _ = algo._reduce_graph(
            disk, tree, disk.edge_file, False, 1, deadline=deadline
        )
        assert owns
        batches = disk.edge_file.device.num_blocks
        assert deadline.checks >= batches
        reduced.unlink()

    def test_em_rewrite_checks_every_batch(self, disk):
        n = disk.num_nodes
        deadline = CountingDeadline()
        reduced, owns = EMSCC()._rewrite(
            disk,
            DisjointSet(n),
            np.ones(n, dtype=bool),
            disk.edge_file,
            False,
            1,
            deadline=deadline,
        )
        assert owns
        assert deadline.checks >= disk.edge_file.device.num_blocks
        reduced.unlink()

    def test_full_runs_honour_tiny_budget(self, disk):
        for algo in (OnePhaseSCC(), OnePhaseBatchSCC(), EMSCC()):
            with pytest.raises(AlgorithmTimeout):
                algo.run(disk, time_limit=-1.0)

    def test_rewrites_still_optional_without_deadline(self, disk):
        """Library callers without a budget keep the old signature."""
        algo = OnePhaseSCC()
        tree = ContractibleTree(disk.num_nodes)
        reduced, owns, _ = algo._reduce_graph(
            disk, tree, disk.edge_file, False, 1
        )
        assert owns
        reduced.unlink()
