"""Unit tests for the block device abstraction."""

import os

import pytest

from repro.io.blocks import BlockDevice
from repro.io.counter import IOCounter


@pytest.fixture
def device(tmp_path):
    counter = IOCounter()
    dev = BlockDevice(str(tmp_path / "disk.bin"), counter=counter, block_size=16)
    yield dev
    dev.close()


class TestGeometry:
    def test_new_device_is_empty(self, device):
        assert device.size_bytes == 0
        assert device.num_blocks == 0

    def test_partial_final_block_counts_as_block(self, device):
        device.append_block(b"abc")
        assert device.num_blocks == 1
        assert device.size_bytes == 3


class TestTransfers:
    def test_roundtrip(self, device):
        device.append_block(b"x" * 16)
        device.append_block(b"y" * 16)
        assert device.read_block(0) == b"x" * 16
        assert device.read_block(1) == b"y" * 16

    def test_read_out_of_range(self, device):
        with pytest.raises(IndexError):
            device.read_block(0)

    def test_write_oversized_block_rejected(self, device):
        with pytest.raises(ValueError):
            device.write_block(0, b"z" * 17)

    def test_sequential_reads_counted_as_sequential(self, device):
        for _ in range(3):
            device.append_block(b"a" * 16)
        device.counter.reset()
        for i in range(3):
            device.read_block(i)
        assert device.counter.stats.seq_reads >= 2  # 1..2 are sequential
        assert device.counter.stats.rand_reads <= 1

    def test_backwards_read_counted_as_random(self, device):
        device.append_block(b"a" * 16)
        device.append_block(b"b" * 16)
        device.counter.reset()
        device.read_block(1)
        device.read_block(0)  # going backwards
        assert device.counter.stats.rand_reads >= 1

    def test_append_returns_indices_in_order(self, device):
        assert device.append_block(b"1") == 0
        assert device.append_block(b"2" * 16) == 1


class TestLifecycle:
    def test_truncate_discards_contents(self, device):
        device.append_block(b"a" * 16)
        device.truncate()
        assert device.num_blocks == 0

    def test_truncate_to(self, device):
        device.append_block(b"a" * 16)
        device.append_block(b"b" * 16)
        device.truncate_to(16)
        assert device.size_bytes == 16

    def test_truncate_to_out_of_range(self, device):
        with pytest.raises(ValueError):
            device.truncate_to(1)

    def test_unlink_removes_file(self, tmp_path):
        path = str(tmp_path / "gone.bin")
        dev = BlockDevice(path, block_size=16)
        dev.append_block(b"data")
        dev.unlink()
        assert not os.path.exists(path)

    def test_context_manager_closes(self, tmp_path):
        with BlockDevice(str(tmp_path / "cm.bin"), block_size=16) as dev:
            dev.append_block(b"ok")
        assert dev._closed
