"""Tests for the semi-external topological sort."""

import numpy as np
import pytest

from repro.apps.toposort import semi_external_toposort
from repro.exceptions import NonTermination
from repro.graph.digraph import Digraph
from repro.graph.diskgraph import DiskGraph
from repro.inmemory.tarjan import tarjan_scc

from tests.conftest import SMALL_BLOCK


def disk(tmp_path, graph, name="g.bin"):
    return DiskGraph.from_digraph(
        graph, str(tmp_path / name), block_size=SMALL_BLOCK
    )


def assert_valid_topological(graph, result):
    """Every inter-SCC edge must go from a lower layer to a higher one."""
    for u, v in graph.edges.tolist():
        lu = result.labels[u]
        lv = result.labels[v]
        if lu != lv:
            assert result.scc_layers[lu] < result.scc_layers[lv]


class TestChainAndDAGs:
    def test_chain_layers(self, tmp_path):
        g = Digraph(4, np.array([[0, 1], [1, 2], [2, 3]]))
        dg = disk(tmp_path, g)
        result = semi_external_toposort(dg)
        assert result.node_layers.tolist() == [0, 1, 2, 3]
        assert result.scans == 4
        dg.unlink()

    def test_order_is_topological(self, tmp_path):
        rng = np.random.default_rng(0)
        pairs = rng.integers(0, 40, size=(120, 2))
        pairs = pairs[pairs[:, 0] != pairs[:, 1]]
        dag_edges = np.column_stack((pairs.min(axis=1), pairs.max(axis=1)))
        g = Digraph(40, dag_edges)
        dg = disk(tmp_path, g)
        result = semi_external_toposort(dg)
        assert_valid_topological(g, result)
        position = {int(v): i for i, v in enumerate(result.order())}
        for u, v in g.edges.tolist():
            assert position[u] < position[v]
        dg.unlink()


class TestWithCycles:
    def test_cycles_share_rank(self, tmp_path, figure1_graph):
        dg = disk(tmp_path, figure1_graph)
        result = semi_external_toposort(dg)
        # All of {b,c,d,e} share a layer; same for {g,h,i,j}.
        assert len(set(result.node_layers[[1, 2, 3, 4]].tolist())) == 1
        assert len(set(result.node_layers[[6, 7, 8, 9]].tolist())) == 1
        assert_valid_topological(figure1_graph, result)
        dg.unlink()

    def test_accepts_precomputed_labels(self, tmp_path, figure1_graph):
        labels, _ = tarjan_scc(figure1_graph)
        dg = disk(tmp_path, figure1_graph)
        result = semi_external_toposort(dg, labels=labels)
        assert_valid_topological(figure1_graph, result)
        dg.unlink()

    def test_reverse_order(self, tmp_path):
        g = Digraph(3, np.array([[0, 1], [1, 2]]))
        dg = disk(tmp_path, g)
        result = semi_external_toposort(dg)
        assert result.reverse_order().tolist() == [2, 1, 0]
        dg.unlink()


class TestIOAndFailure:
    def test_scan_count_matches_depth(self, tmp_path):
        """depth(DAG) peeling scans, each one pass over E(G)."""
        n = 10
        g = Digraph(n, np.array([[i, i + 1] for i in range(n - 1)]))
        dg = disk(tmp_path, g)
        before = dg.counter.snapshot()
        result = semi_external_toposort(
            dg, labels=np.arange(n, dtype=np.int64)
        )
        assert result.scans == n
        assert dg.counter.since(before).reads == result.scans * dg.edge_file.num_blocks
        dg.unlink()

    def test_bad_labels_shape(self, tmp_path):
        g = Digraph(3)
        dg = disk(tmp_path, g)
        with pytest.raises(ValueError):
            semi_external_toposort(dg, labels=np.array([0]))
        dg.unlink()

    def test_cyclic_labels_raise_nontermination(self, tmp_path):
        """Labels that fail to break a cycle make peeling stall."""
        g = Digraph(2, np.array([[0, 1], [1, 0]]))
        dg = disk(tmp_path, g)
        with pytest.raises(NonTermination):
            semi_external_toposort(dg, labels=np.array([0, 1]))
        dg.unlink()
