"""Tier-1 tests for lock-discipline race detection (THR001 / THR002)."""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis_static.locks import (
    UnguardedReadRule,
    UnguardedWriteRule,
    build_lock_models,
)

REPO = Path(__file__).resolve().parents[1]
FIXTURES = REPO / "tests" / "lint_fixtures"


def check(rule_cls, source, relpath="repro/io/mod.py"):
    """Run ``rule_cls`` over inline ``source``; return the violations."""
    return rule_cls().check(ast.parse(source), relpath)


class TestBrokenFixture:
    def test_broken_cache_trips_thr001(self):
        source = (FIXTURES / "io" / "broken_cache.py").read_text()
        found = check(UnguardedWriteRule, source)
        assert [v.rule for v in found] == ["THR001"]
        assert "BrokenCache._entries" in found[0].message
        assert "reset" in found[0].message

    def test_broken_cache_has_no_unguarded_reads(self):
        source = (FIXTURES / "io" / "broken_cache.py").read_text()
        assert check(UnguardedReadRule, source) == []


class TestRealTree:
    def test_page_cache_model_matches_the_source(self):
        source = (REPO / "src" / "repro" / "io" / "prefetch.py").read_text()
        models = build_lock_models(ast.parse(source))
        by_name = {m.class_node.name: m for m in models}
        assert "PageCache" in by_name
        cache = by_name["PageCache"]
        assert "_lock" in cache.lock_attrs
        assert "_lock" in cache.guards.get("_entries", set())

    def test_prefetch_module_is_discipline_clean(self):
        source = (REPO / "src" / "repro" / "io" / "prefetch.py").read_text()
        tree = ast.parse(source)
        for rule_cls in (UnguardedWriteRule, UnguardedReadRule):
            assert rule_cls().check(tree, "repro/io/prefetch.py") == []


class TestDiscipline:
    LOCKED = (
        "import threading\n"
        "class C:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._state = 0\n"
        "    def bump(self):\n"
        "        with self._lock:\n"
        "            self._state += 1\n"
    )

    def test_fully_locked_class_is_clean(self):
        assert check(UnguardedWriteRule, self.LOCKED) == []
        assert check(UnguardedReadRule, self.LOCKED) == []

    def test_unguarded_read_trips_thr002(self):
        source = self.LOCKED + (
            "    def peek(self):\n"
            "        return self._state\n"
        )
        found = check(UnguardedReadRule, source)
        assert [v.rule for v in found] == ["THR002"]

    def test_mutator_call_counts_as_a_write(self):
        source = (
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._items = []\n"
            "    def add(self, x):\n"
            "        with self._lock:\n"
            "            self._items.append(x)\n"
            "    def drop_all(self):\n"
            "        self._items.clear()\n"
        )
        found = check(UnguardedWriteRule, source)
        assert [v.rule for v in found] == ["THR001"]
        assert "drop_all" in found[0].message

    def test_init_is_exempt(self):
        # `__init__` writes `_state` without the lock; the object is not
        # shared yet so no finding.
        assert check(UnguardedWriteRule, self.LOCKED) == []

    def test_acquire_release_guarding_is_recognized(self):
        source = (
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._state = 0\n"
            "    def bump(self):\n"
            "        self._lock.acquire()\n"
            "        self._state += 1\n"
            "        self._lock.release()\n"
        )
        assert check(UnguardedWriteRule, source) == []

    def test_lockless_class_is_out_of_contract(self):
        source = (
            "class C:\n"
            "    def __init__(self):\n"
            "        self._state = 0\n"
            "    def bump(self):\n"
            "        self._state += 1\n"
        )
        assert build_lock_models(ast.parse(source)) == []
        assert check(UnguardedWriteRule, source) == []

    def test_never_locked_attribute_is_not_guarded(self):
        # `_free` is never written under the lock, so the class never
        # opted it into the discipline.
        source = self.LOCKED + (
            "    def scratch(self):\n"
            "        self._free = 1\n"
        )
        assert check(UnguardedWriteRule, source) == []
