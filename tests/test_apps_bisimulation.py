"""Tests for the bisimulation partitioner."""

import numpy as np
import pytest

from repro.apps.bisimulation import bisimulation_partition
from repro.graph.digraph import Digraph


class TestDAGBisimulation:
    def test_identical_leaves_collapse(self):
        # 0 -> 1, 0 -> 2; 1 and 2 are both sinks -> bisimilar.
        g = Digraph(3, np.array([[0, 1], [0, 2]]))
        classes, count = bisimulation_partition(g)
        assert classes[1] == classes[2]
        assert classes[0] != classes[1]
        assert count == 2

    def test_different_successors_distinguish(self):
        # 1 -> 3 (sink), 2 -> nothing: different signatures.
        g = Digraph(4, np.array([[0, 1], [0, 2], [1, 3]]))
        classes, _ = bisimulation_partition(g)
        assert classes[1] != classes[2]

    def test_two_parallel_chains_collapse(self):
        # Two disjoint chains of equal length are pointwise bisimilar.
        g = Digraph(6, np.array([[0, 1], [1, 2], [3, 4], [4, 5]]))
        classes, count = bisimulation_partition(g)
        assert classes[0] == classes[3]
        assert classes[1] == classes[4]
        assert classes[2] == classes[5]
        assert count == 3

    def test_scc_members_share_class(self):
        # A 3-cycle feeding a sink: the cycle condenses to one node.
        g = Digraph(4, np.array([[0, 1], [1, 2], [2, 0], [2, 3]]))
        classes, _ = bisimulation_partition(g)
        assert classes[0] == classes[1] == classes[2]
        assert classes[3] != classes[0]


class TestNodeLabels:
    def test_labels_split_classes(self):
        g = Digraph(3, np.array([[0, 1], [0, 2]]))
        classes, count = bisimulation_partition(
            g, node_labels=np.array([0, 1, 2])
        )
        assert classes[1] != classes[2]
        assert count == 3

    def test_label_shape_checked(self):
        g = Digraph(2)
        with pytest.raises(ValueError):
            bisimulation_partition(g, node_labels=np.array([1]))

    def test_mixed_labels_in_scc_rejected(self):
        g = Digraph(2, np.array([[0, 1], [1, 0]]))
        with pytest.raises(ValueError):
            bisimulation_partition(g, node_labels=np.array([0, 1]))

    def test_uniform_labels_in_scc_accepted(self):
        g = Digraph(2, np.array([[0, 1], [1, 0]]))
        classes, count = bisimulation_partition(
            g, node_labels=np.array([7, 7])
        )
        assert classes[0] == classes[1]
