"""Tests for the runtime invariant layer (REPRO_CHECK_INVARIANTS).

The BR⁺-Tree's structural contracts — parent/depth consistency, the
backward-link shape, and the drank monotonicity of Lemma 5.1 — are
checked after every mutating call when ``REPRO_CHECK_INVARIANTS=1``.
These tests corrupt trees on purpose and assert the checks both fire
when enabled and stay silent (and free) when disabled.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import compute_sccs
from repro.analysis_static.contracts import (
    ENV_VAR,
    invariant,
    invariants_enabled,
    require,
)
from repro.exceptions import ContractViolation
from repro.spanning.brtree import BRPlusTree


@pytest.fixture
def checks_on(monkeypatch):
    """Enable runtime invariant checking for one test."""
    monkeypatch.setenv(ENV_VAR, "1")


def chain_tree(n=4):
    """A path tree 0 → 1 → … → n-1 rooted at 0."""
    tree = BRPlusTree(n)
    for child in range(1, n):
        tree.reparent(child, child - 1)
    return tree


class TestGate:
    """The env-var gate itself."""

    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert not invariants_enabled()

    @pytest.mark.parametrize("value", ["", "0", "false", "no", "off", "False"])
    def test_falsy_values_disable(self, monkeypatch, value):
        monkeypatch.setenv(ENV_VAR, value)
        assert not invariants_enabled()

    @pytest.mark.parametrize("value", ["1", "true", "yes", "on"])
    def test_truthy_values_enable(self, monkeypatch, value):
        monkeypatch.setenv(ENV_VAR, value)
        assert invariants_enabled()

    def test_require_raises_only_its_message(self, checks_on):
        with pytest.raises(ContractViolation, match="broken thing"):
            require(False, "broken thing")
        require(True, "never raised")

    def test_decorator_runs_named_checker(self, checks_on):
        calls = []

        class Widget:
            @invariant("check_ok")
            def poke(self):
                return 7

            def check_ok(self):
                calls.append("checked")

        assert Widget().poke() == 7
        assert calls == ["checked"]

    def test_decorator_skips_checker_when_disabled(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        calls = []

        class Widget:
            @invariant("check_ok")
            def poke(self):
                return 7

            def check_ok(self):
                calls.append("checked")

        assert Widget().poke() == 7
        assert calls == []


class TestBRPlusTreeContracts:
    """Corruption detection on the instrumented BR⁺-Tree."""

    def test_clean_tree_passes(self, checks_on):
        tree = chain_tree(4)
        assert tree.offer_blink(3, 0)
        tree.update_drank()
        assert tree.drank.tolist() == [1, 1, 1, 1]

    def test_offer_to_non_ancestor_rejected(self, checks_on):
        tree = BRPlusTree(4)
        tree.reparent(1, 0)
        tree.reparent(2, 0)
        tree.reparent(3, 1)
        with pytest.raises(ContractViolation, match="proper ancestor"):
            tree.offer_blink(3, 2)

    def test_offer_to_self_rejected(self, checks_on):
        tree = chain_tree(3)
        with pytest.raises(ContractViolation):
            tree.offer_blink(2, 2)

    def test_corrupt_self_blink_caught_by_next_offer(self, checks_on):
        tree = chain_tree(4)
        tree.blink[2] = 2  # corruption no legal offer_blink could create
        with pytest.raises(ContractViolation, match="itself"):
            tree.offer_blink(3, 0)

    def test_corrupt_structure_caught_by_update_drank(self, checks_on):
        tree = BRPlusTree(3)
        tree.depth[2] = 5  # root depth must be 1
        with pytest.raises(ContractViolation):
            tree.update_drank()

    def test_update_drank_restores_monotonicity_check(self, checks_on):
        # Deep chain with a mid-chain blink: drank must never increase
        # from parent to child, and the post-call contract verifies it.
        tree = chain_tree(6)
        assert tree.offer_blink(4, 1)
        tree.update_drank()
        drank = tree.drank.tolist()
        for child in range(1, 6):
            assert drank[child - 1] <= drank[child]

    def test_disabled_gate_skips_detection(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        tree = BRPlusTree(3)
        tree.depth[2] = 5
        tree.update_drank()  # corrupt, but no check runs


class TestEndToEnd:
    """Whole-algorithm runs with the checks enabled stay correct."""

    @pytest.mark.parametrize("algorithm", ["2P-SCC", "1P-SCC", "1PB-SCC"])
    def test_compute_sccs_with_invariants(self, checks_on, algorithm):
        edges = np.array(
            [[0, 1], [1, 2], [2, 0], [2, 3], [3, 4], [4, 3], [4, 5]]
        )
        result = compute_sccs(edges, num_nodes=6, algorithm=algorithm)
        assert result.num_sccs == 3
