"""White-box tests for 1P-SCC internals and the naive variant."""

import numpy as np

from repro.core.one_phase import OnePhaseSCC, naive_single_tree
from repro.core.validate import partitions_equal
from repro.graph.digraph import Digraph
from repro.graph.diskgraph import DiskGraph
from repro.inmemory.tarjan import tarjan_scc
from repro.spanning.tree import ContractibleTree

from tests.conftest import SMALL_BLOCK


class TestCandidatePrefilter:
    def test_only_depth_nonincreasing_edges_survive(self):
        tree = ContractibleTree(4)
        tree.reparent(1, 0)
        tree.reparent(2, 1)  # depths: 0->1, 1->2, 2->3; 3 root (depth 1)
        batch = np.array(
            [[0, 2], [2, 0], [2, 3], [3, 2], [1, 1]], dtype=np.uint32
        )
        candidates = OnePhaseSCC._candidates(tree, batch)
        assert isinstance(candidates, np.ndarray)
        assert candidates.dtype == np.int64
        pairs = {tuple(c) for c in candidates.tolist()}
        # (0,2): depth 1 < 3 -> dropped.  (2,0): 3 >= 1 -> kept.
        # (2,3): 3 >= 1 -> kept.  (3,2): 1 < 3 -> dropped.  (1,1): self.
        assert pairs == {(2, 0), (2, 3)}

    def test_dead_endpoints_filtered(self):
        tree = ContractibleTree(3)
        tree.reject(1)
        batch = np.array([[0, 1], [1, 2], [2, 0]], dtype=np.uint32)
        candidates = OnePhaseSCC._candidates(tree, batch)
        assert 1 not in set(candidates.ravel().tolist())

    def test_down_edges_yield_no_candidates(self):
        tree = ContractibleTree(2)
        tree.reparent(1, 0)
        batch = np.array([[0, 1]], dtype=np.uint32)  # down edge only
        candidates = OnePhaseSCC._candidates(tree, batch)
        assert candidates.shape == (0, 2)


class TestNaiveVariant:
    def test_factory_disables_optimizations(self):
        algo = naive_single_tree()
        assert algo.name == "Naive-1T"
        assert not algo.enable_acceptance
        assert not algo.enable_rejection

    def test_naive_is_correct_but_never_shrinks_the_graph(self, tmp_path):
        rng = np.random.default_rng(4)
        g = Digraph(80, rng.integers(0, 80, size=(300, 2)))
        truth, _ = tarjan_scc(g)
        disk = DiskGraph.from_digraph(
            g, str(tmp_path / "g.bin"), block_size=SMALL_BLOCK
        )
        result = naive_single_tree().run(disk)
        assert partitions_equal(truth, result.labels)
        assert all(
            it.live_edges == g.num_edges for it in result.stats.per_iteration
        )
        disk.unlink()

    def test_result_name_used_in_stats(self, tmp_path):
        g = Digraph(4, np.array([[0, 1], [1, 0]]))
        disk = DiskGraph.from_digraph(
            g, str(tmp_path / "n.bin"), block_size=SMALL_BLOCK
        )
        result = naive_single_tree().run(disk)
        assert result.stats.algorithm == "Naive-1T"
        disk.unlink()
