"""The declarative sweep plan: case lists, tiers, workload resolution.

The case lists in :mod:`repro.artifact.cases` are the single source of
truth shared by the pytest benchmark suite and the ``repro-scc
reproduce`` runner, so their structural invariants are contracts: ids
unique and well-formed, the smoke tier a strict subset of paper, every
workload recipe resolvable to a graph, plans round-trippable through
``plan.json``.
"""

from __future__ import annotations

import pytest

from repro.artifact.cases import EXPERIMENT_CASES, all_cases, cases_for
from repro.artifact.plan import TIERS, Plan, build_graph, build_plan
from repro.artifact.spec import TIER_PAPER, TIER_SMOKE, CaseSpec, WorkloadSpec
from repro.core import ALGORITHMS


def test_all_cell_ids_unique_and_well_formed():
    cases = all_cases()
    ids = [case.cell_id for case in cases]
    assert len(set(ids)) == len(ids)
    for case in cases:
        assert case.cell_id == f"{case.experiment}/{case.case}/{case.algorithm}"
        assert case.experiment in EXPERIMENT_CASES
        assert case.algorithm in ALGORITHMS
        assert "/" not in case.fs_id


def test_smoke_is_a_subset_of_paper():
    smoke = {case.cell_id for case in all_cases(TIER_SMOKE)}
    paper = {case.cell_id for case in all_cases(TIER_PAPER)}
    assert smoke  # non-empty
    assert smoke < paper  # strict subset: paper adds the full sweeps


def test_every_experiment_contributes_smoke_cells():
    # The CI gate must exercise every table/figure, not just the cheap ones.
    for experiment in EXPERIMENT_CASES:
        assert cases_for(experiment, TIER_SMOKE), (
            f"{experiment} has no smoke-tier cells"
        )


def test_unknown_experiment_raises():
    with pytest.raises(ValueError, match="unknown experiment"):
        cases_for("fig99")


def test_build_plan_tier_parameters():
    plan = build_plan(TIER_SMOKE)
    assert plan.scale == TIERS[TIER_SMOKE].scale
    assert plan.time_limit == TIERS[TIER_SMOKE].time_limit
    assert plan.cell_ids() == [c.cell_id for c in all_cases(TIER_SMOKE)]


def test_build_plan_glob_filter():
    plan = build_plan(TIER_SMOKE, only=["table1/*"])
    assert plan.cell_ids()
    assert all(cell_id.startswith("table1/") for cell_id in plan.cell_ids())


def test_build_plan_rejects_unmatched_pattern():
    with pytest.raises(ValueError, match="matches no"):
        build_plan(TIER_SMOKE, only=["fig99/*"])


def test_build_plan_rejects_unknown_tier():
    with pytest.raises(ValueError, match="unknown tier"):
        build_plan("warp")


def test_plan_round_trips_through_dict():
    plan = build_plan(TIER_SMOKE, only=["table1/*", "fig12/*"])
    clone = Plan.from_dict(plan.to_dict())
    assert clone == plan
    assert clone.to_dict() == plan.to_dict()


def test_plan_from_dict_rejects_schema_drift():
    data = build_plan(TIER_SMOKE, only=["table1/*"]).to_dict()
    data["schema"] = 99
    with pytest.raises(ValueError, match="unsupported plan schema"):
        Plan.from_dict(data)


def test_case_spec_round_trips_through_dict():
    for case in all_cases(TIER_SMOKE)[:10]:
        assert CaseSpec.from_dict(case.to_dict()) == case


@pytest.mark.parametrize("kind", ["webspam", "webspam-subgraph",
                                  "synthetic", "real"])
def test_every_workload_kind_resolves(kind):
    spec = next(
        case.workload for case in all_cases() if case.workload.kind == kind
    )
    graph = build_graph(spec, 1e-4)
    assert graph.num_nodes > 0
    # Cached resolution: the same recipe returns the same object.
    assert build_graph(spec, 1e-4) is graph


def test_unknown_workload_kind_raises():
    with pytest.raises(ValueError, match="unknown workload kind"):
        build_graph(WorkloadSpec.make("quantum"), 1e-4)


def test_subgraph_resolution_matches_bench_fig12():
    # The runner must induce exactly the subgraph bench_fig12 measures.
    import numpy as np

    from repro.graph.builders import induced_subgraph
    from repro.workloads.realworld import webspam_like

    scale = 1e-4
    fraction = 0.4
    base = webspam_like(scale=0.4 * scale, seed=0, avg_degree=12.0).graph
    rng = np.random.default_rng(int(fraction * 100))
    nodes = rng.choice(
        base.num_nodes,
        size=int(round(base.num_nodes * fraction)),
        replace=False,
    )
    expected, _ = induced_subgraph(base, nodes)

    spec = WorkloadSpec.make(
        "webspam-subgraph",
        scale_factor=0.4, seed=0, avg_degree=12.0, fraction=fraction,
    )
    resolved = build_graph(spec, scale)
    assert resolved.num_nodes == expected.num_nodes
    assert resolved.num_edges == expected.num_edges
