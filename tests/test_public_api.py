"""Tests for the top-level public API (`repro.compute_sccs` and exports)."""

import numpy as np
import pytest

import repro
from repro import Digraph, DiskGraph, compute_sccs
from repro.core.validate import partitions_equal
from repro.inmemory.tarjan import tarjan_scc


class TestComputeSCCs:
    def test_accepts_digraph(self, figure1_graph):
        result = compute_sccs(figure1_graph)
        assert result.num_sccs == 6

    def test_accepts_raw_edge_array(self):
        edges = np.array([[0, 1], [1, 0]])
        result = compute_sccs(edges, num_nodes=3)
        assert result.num_sccs == 2

    def test_raw_edges_require_num_nodes(self):
        with pytest.raises(ValueError):
            compute_sccs(np.array([[0, 1]]))

    def test_accepts_disk_graph(self, tmp_path, figure1_graph):
        disk = DiskGraph.from_digraph(
            figure1_graph, str(tmp_path / "g.bin"), block_size=64
        )
        result = compute_sccs(disk)
        assert result.num_sccs == 6
        disk.unlink()

    def test_accepts_algorithm_instance(self, figure1_graph):
        from repro import OnePhaseSCC

        result = compute_sccs(figure1_graph, algorithm=OnePhaseSCC())
        assert result.num_sccs == 6

    def test_unknown_algorithm_rejected(self, figure1_graph):
        with pytest.raises(ValueError):
            compute_sccs(figure1_graph, algorithm="3P-SCC")

    def test_workdir_used_and_cleaned(self, tmp_path, figure1_graph):
        compute_sccs(figure1_graph, workdir=str(tmp_path))
        assert list(tmp_path.iterdir()) == []

    @pytest.mark.parametrize("name", sorted(repro.ALGORITHMS))
    def test_every_registered_algorithm_runs(self, name, figure1_graph):
        truth, _ = tarjan_scc(figure1_graph)
        result = compute_sccs(figure1_graph, algorithm=name, block_size=64)
        assert partitions_equal(truth, result.labels)


class TestExports:
    def test_version(self):
        assert repro.__version__

    def test_all_names_resolvable(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_quickstart_docstring_example(self):
        edges = np.array([[0, 1], [1, 2], [2, 0], [2, 3]])
        graph = Digraph(4, edges)
        result = compute_sccs(graph, algorithm="1PB-SCC")
        assert result.num_sccs == 2
        assert result.stats.io.total > 0
