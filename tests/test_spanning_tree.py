"""Tests for the contractible spanning forest."""

import numpy as np
import pytest

from repro.constants import VIRTUAL_ROOT
from repro.spanning.tree import ContractibleTree


def build_chain(n):
    """A path 0 -> 1 -> ... -> n-1 hanging off the virtual root."""
    tree = ContractibleTree(n)
    for v in range(1, n):
        tree.reparent(v, v - 1)
    return tree


class TestInitialStar:
    def test_all_nodes_are_roots(self):
        tree = ContractibleTree(4)
        assert (tree.parent == VIRTUAL_ROOT).all()
        assert (tree.depth == 1).all()
        assert sorted(tree.roots()) == [0, 1, 2, 3]
        tree.check_invariants()

    def test_initial_star_edges_are_not_real(self):
        tree = ContractibleTree(3)
        assert not tree.parent_is_real.any()


class TestAncestry:
    def test_chain_ancestry(self):
        tree = build_chain(5)
        assert tree.is_ancestor(0, 4)
        assert tree.is_ancestor(2, 3)
        assert not tree.is_ancestor(3, 2)
        assert tree.is_ancestor(2, 2)

    def test_path_up(self):
        tree = build_chain(5)
        assert tree.path_up(4, 1) == [4, 3, 2, 1]

    def test_path_up_rejects_non_ancestor(self):
        tree = ContractibleTree(3)
        tree.reparent(1, 0)
        with pytest.raises(ValueError):
            tree.path_up(1, 2)

    def test_siblings_not_ancestors(self):
        tree = ContractibleTree(3)
        tree.reparent(1, 0)
        tree.reparent(2, 0)
        assert not tree.is_ancestor(1, 2)
        assert not tree.is_ancestor(2, 1)


class TestPushdown:
    def test_pushdown_moves_subtree_and_depths(self):
        tree = ContractibleTree(4)
        tree.reparent(1, 0)
        tree.reparent(2, 1)  # chain 0-1-2; 3 separate root
        tree.pushdown(2, 3)  # move 3 under 2
        assert tree.parent[3] == 2
        assert tree.depth[3] == 4
        tree.check_invariants()

    def test_pushdown_updates_whole_subtree(self):
        tree = ContractibleTree(5)
        tree.reparent(1, 0)  # 0-1
        tree.reparent(3, 2)
        tree.reparent(4, 3)  # 2-3-4
        tree.pushdown(1, 2)  # move 2's subtree under 1
        assert tree.depth[2] == 3
        assert tree.depth[3] == 4
        assert tree.depth[4] == 5
        tree.check_invariants()


class TestContraction:
    def test_contract_path_merges_members(self):
        tree = build_chain(4)
        rep = tree.contract_path(3, 1)  # contract 1-2-3
        assert rep == 1
        assert tree.find(2) == 1 and tree.find(3) == 1
        assert tree.ds.set_size(1) == 3
        assert tree.num_live() == 2  # nodes 0 and supernode 1
        tree.check_invariants()

    def test_contract_rehangs_side_children(self):
        extra = ContractibleTree(5)
        extra.reparent(1, 0)
        extra.reparent(2, 1)
        extra.reparent(3, 1)  # side child of 1
        extra.reparent(4, 2)  # side child of 2
        extra.contract_path(2, 0)  # contract 0-1-2
        assert extra.find(1) == 0 and extra.find(2) == 0
        assert extra.parent[3] == 0 and extra.parent[4] == 0
        assert extra.depth[3] == 2 and extra.depth[4] == 2
        extra.check_invariants()

    def test_contract_single_node_is_noop(self):
        tree = build_chain(3)
        assert tree.contract_path(1, 1) == 1
        assert tree.num_live() == 3

    def test_contracted_supernode_keeps_top_position(self):
        tree = build_chain(4)
        tree.contract_path(2, 0)
        assert tree.depth[0] == 1
        assert tree.parent[0] == VIRTUAL_ROOT

    def test_nested_contractions(self):
        tree = build_chain(6)
        tree.contract_path(2, 1)
        tree.contract_path(tree.find(4), tree.find(3))
        tree.contract_path(tree.find(5), tree.find(1))
        # everything from 1 down is now one supernode
        assert len({tree.find(v) for v in range(1, 6)}) == 1
        tree.check_invariants()


class TestRejection:
    def test_reject_root_promotes_children(self):
        tree = build_chain(3)
        tree.reject(0)
        assert not tree.live[0]
        assert tree.parent[1] == VIRTUAL_ROOT
        assert tree.depth[1] == 1 and tree.depth[2] == 2
        assert tree.rejected == [0]
        tree.check_invariants()

    def test_reject_leaf(self):
        tree = build_chain(3)
        tree.reject(2)
        assert not tree.live[2]
        assert tree.num_live() == 2
        tree.check_invariants()

    def test_rejected_children_lose_real_parent_flag(self):
        tree = build_chain(3)
        tree.parent_is_real[:] = True
        tree.reject(1)
        assert not tree.parent_is_real[2]


class TestLabels:
    def test_labels_after_mixed_operations(self):
        tree = build_chain(5)
        tree.contract_path(2, 1)
        tree.reject(tree.find(4))
        labels, count = tree.scc_labels()
        assert count == 4  # {0}, {1,2}, {3}, {4}
        assert labels[1] == labels[2]
        assert len({labels[0], labels[1], labels[3], labels[4]}) == 4
