"""Tests for the certifying SCC partition checker."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro import compute_sccs
from repro.core.validate import certify_scc_partition
from repro.exceptions import ValidationError
from repro.graph.digraph import Digraph
from repro.inmemory.tarjan import tarjan_scc

from tests.conftest import random_digraphs


class TestAcceptsCorrect:
    def test_figure1(self, figure1_graph):
        labels, _ = tarjan_scc(figure1_graph)
        certify_scc_partition(figure1_graph, labels)

    def test_empty(self):
        certify_scc_partition(Digraph(0), np.empty(0, dtype=np.int64))

    def test_all_singletons_dag(self):
        g = Digraph(4, np.array([[0, 1], [1, 2], [2, 3]]))
        certify_scc_partition(g, np.array([0, 1, 2, 3]))

    @settings(max_examples=40, deadline=None)
    @given(graph=random_digraphs())
    def test_property_tarjan_always_certifies(self, graph):
        labels, _ = tarjan_scc(graph)
        certify_scc_partition(graph, labels)


class TestRejectsWrong:
    def test_too_coarse(self):
        """Merging two distinct SCCs must fail condition 1."""
        g = Digraph(4, np.array([[0, 1], [1, 0], [1, 2], [2, 3], [3, 2]]))
        with pytest.raises(ValidationError, match="too coarse"):
            certify_scc_partition(g, np.array([0, 0, 0, 0]))

    def test_too_fine(self):
        """Splitting one SCC must fail condition 2 (quotient cycle)."""
        g = Digraph(2, np.array([[0, 1], [1, 0]]))
        with pytest.raises(ValidationError, match="too fine"):
            certify_scc_partition(g, np.array([0, 1]))

    def test_too_fine_via_long_cycle(self):
        n = 6
        g = Digraph(n, np.array([[i, (i + 1) % n] for i in range(n)]))
        with pytest.raises(ValidationError, match="too fine"):
            certify_scc_partition(g, np.arange(n))

    def test_shape_mismatch(self):
        with pytest.raises(ValidationError):
            certify_scc_partition(Digraph(3), np.array([0, 1]))


class TestCertifiesSemiExternalOutputs:
    @pytest.mark.parametrize("algorithm", ["1PB-SCC", "1P-SCC", "2P-SCC"])
    def test_certify_random(self, algorithm):
        rng = np.random.default_rng(17)
        for _ in range(5):
            n = int(rng.integers(5, 60))
            g = Digraph(n, rng.integers(0, n, size=(3 * n, 2)))
            result = compute_sccs(g, algorithm=algorithm, block_size=64)
            certify_scc_partition(g, result.labels)
