"""Unit and property tests for external sorting and reversal."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.io.edgefile import EdgeFile
from repro.io.extsort import (
    estimate_sort_ios,
    external_sort_edges,
    reverse_edges,
)
from repro.io.memory import MemoryModel


def _sorted_copy(edges, target_major):
    edges = edges.astype(np.int64)
    if target_major:
        order = np.lexsort((edges[:, 0], edges[:, 1]))
    else:
        order = np.lexsort((edges[:, 1], edges[:, 0]))
    return edges[order].astype(np.uint32)


class TestExternalSort:
    def test_sorts_by_source(self, edge_file_factory, tmp_path):
        rng = np.random.default_rng(0)
        edges = rng.integers(0, 50, size=(500, 2), dtype=np.int64)
        ef = edge_file_factory(edges=edges)
        out = external_sort_edges(ef, order="source")
        assert np.array_equal(out.read_all(), _sorted_copy(edges, False))
        out.unlink()

    def test_sorts_by_target(self, edge_file_factory):
        rng = np.random.default_rng(1)
        edges = rng.integers(0, 50, size=(300, 2), dtype=np.int64)
        ef = edge_file_factory(edges=edges)
        out = external_sort_edges(ef, order="target")
        assert np.array_equal(out.read_all(), _sorted_copy(edges, True))
        out.unlink()

    def test_tiny_memory_forces_multiway_merge(self, edge_file_factory):
        """Many runs -> several merge generations, still fully sorted."""
        rng = np.random.default_rng(2)
        edges = rng.integers(0, 1000, size=(2000, 2), dtype=np.int64)
        ef = edge_file_factory(edges=edges)
        memory = MemoryModel(num_nodes=0, capacity=2 * 64, block_size=64)
        out = external_sort_edges(ef, order="source", memory=memory)
        assert np.array_equal(out.read_all(), _sorted_copy(edges, False))
        out.unlink()

    def test_empty_input(self, edge_file_factory):
        ef = edge_file_factory()
        out = external_sort_edges(ef)
        assert out.num_edges == 0
        out.unlink()

    def test_charges_ios(self, edge_file_factory, counter):
        rng = np.random.default_rng(3)
        ef = edge_file_factory(edges=rng.integers(0, 9, size=(200, 2)))
        before = counter.snapshot()
        out = external_sort_edges(ef)
        delta = counter.since(before)
        assert delta.reads > 0 and delta.writes > 0
        out.unlink()

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(m=st.integers(min_value=0, max_value=200), seed=st.integers(0, 999))
    def test_property_sorted_and_permutation(self, tmp_path, m, seed):
        rng = np.random.default_rng(seed)
        edges = rng.integers(0, 64, size=(m, 2), dtype=np.int64)
        path = str(tmp_path / f"p{seed}-{m}.bin")
        ef = EdgeFile.from_array(path, edges, block_size=64)
        out = external_sort_edges(ef)
        got = out.read_all()
        assert np.array_equal(got, _sorted_copy(edges, False))
        ef.unlink()
        out.unlink()


class TestReverse:
    def test_reverse_swaps_columns(self, edge_file_factory):
        edges = np.array([[1, 2], [3, 4], [5, 6]])
        ef = edge_file_factory(edges=edges)
        out = reverse_edges(ef)
        assert np.array_equal(out.read_all(), edges[:, ::-1].astype(np.uint32))
        out.unlink()

    def test_reverse_costs_one_read_one_write_pass(self, edge_file_factory, counter):
        rng = np.random.default_rng(4)
        ef = edge_file_factory(edges=rng.integers(0, 9, size=(64, 2)))
        blocks = ef.num_blocks
        before = counter.snapshot()
        out = reverse_edges(ef)
        delta = counter.since(before)
        assert delta.reads == blocks
        assert delta.writes == blocks
        out.unlink()


class TestEstimate:
    def test_zero_edges(self):
        assert estimate_sort_ios(0, 64, 1024) == 0

    def test_grows_with_input(self):
        small = estimate_sort_ios(1_000, 65536, 1 << 20)
        big = estimate_sort_ios(1_000_000, 65536, 1 << 20)
        assert big > small
