"""Unit tests for on-disk edge lists."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exceptions import GraphFormatError
from repro.io.edgefile import EdgeFile


def edges_array(m, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 1000, size=(m, 2), dtype=np.int64)


class TestWriteRead:
    def test_roundtrip_exact(self, edge_file_factory):
        edges = edges_array(100)
        ef = edge_file_factory(edges=edges)
        assert np.array_equal(ef.read_all(), edges.astype(np.uint32))

    def test_empty_file(self, edge_file_factory):
        ef = edge_file_factory()
        assert ef.num_edges == 0
        assert list(ef.scan()) == []
        assert ef.read_all().shape == (0, 2)

    def test_num_edges_counts_buffered(self, edge_file_factory):
        ef = edge_file_factory()
        ef.append(edges_array(3))
        assert ef.num_edges == 3  # still partly in the write buffer

    def test_append_after_flush_preserves_data(self, edge_file_factory):
        first = edges_array(5, seed=1)
        second = edges_array(7, seed=2)
        ef = edge_file_factory(edges=first)
        ef.append(second)
        ef.flush()
        combined = np.concatenate([first, second]).astype(np.uint32)
        assert np.array_equal(ef.read_all(), combined)

    def test_bad_shape_rejected(self, edge_file_factory):
        ef = edge_file_factory()
        with pytest.raises(GraphFormatError):
            ef.append(np.zeros((3, 3)))

    def test_block_size_must_fit_records(self, tmp_path):
        with pytest.raises(ValueError):
            EdgeFile(str(tmp_path / "bad.bin"), block_size=12)


class TestScan:
    def test_scan_batches_cover_file_in_order(self, edge_file_factory):
        edges = edges_array(50)
        ef = edge_file_factory(edges=edges)
        got = np.concatenate(list(ef.scan()))
        assert np.array_equal(got, edges.astype(np.uint32))

    def test_scan_charges_one_read_per_block(self, edge_file_factory, counter):
        edges = edges_array(64)  # 64 edges * 8B = 512B = 8 blocks of 64B
        ef = edge_file_factory(edges=edges)
        before = counter.snapshot()
        list(ef.scan())
        delta = counter.since(before)
        assert delta.reads == ef.num_blocks == 8

    def test_scan_with_larger_batches_same_io(self, edge_file_factory, counter):
        edges = edges_array(64)
        ef = edge_file_factory(edges=edges)
        before = counter.snapshot()
        batches = list(ef.scan(batch_blocks=3))
        delta = counter.since(before)
        assert delta.reads == ef.num_blocks
        assert sum(len(b) for b in batches) == 64

    def test_scan_rejects_nonpositive_batch(self, edge_file_factory):
        ef = edge_file_factory(edges=edges_array(4))
        with pytest.raises(ValueError):
            list(ef.scan(batch_blocks=0))


class TestRewrite:
    def test_rewrite_replaces_contents(self, edge_file_factory):
        ef = edge_file_factory(edges=edges_array(20, seed=3))
        replacement = edges_array(5, seed=4)
        ef.rewrite([replacement])
        assert np.array_equal(ef.read_all(), replacement.astype(np.uint32))

    def test_rewrite_from_own_scan(self, edge_file_factory):
        edges = edges_array(30, seed=5)
        ef = edge_file_factory(edges=edges)
        ef.rewrite(batch[batch[:, 0] % 2 == 0] for batch in ef.scan())
        kept = edges[edges[:, 0] % 2 == 0].astype(np.uint32)
        assert np.array_equal(ef.read_all(), kept)

    def test_rewrite_charges_writes(self, edge_file_factory, counter):
        ef = edge_file_factory(edges=edges_array(40, seed=6))
        before = counter.snapshot()
        ef.rewrite([edges_array(40, seed=7)])
        assert counter.since(before).writes > 0


class TestHypothesis:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(
        chunks=st.lists(
            st.integers(min_value=0, max_value=30), min_size=1, max_size=6
        )
    )
    def test_chunked_appends_equal_one_append(self, tmp_path, chunks):
        rng = np.random.default_rng(sum(chunks) + len(chunks))
        total = sum(chunks)
        edges = rng.integers(0, 100, size=(total, 2), dtype=np.int64)
        path_a = str(tmp_path / f"a-{rng.integers(1 << 30)}.bin")
        path_b = str(tmp_path / f"b-{rng.integers(1 << 30)}.bin")

        whole = EdgeFile.from_array(path_a, edges, block_size=64)
        piecewise = EdgeFile.create(path_b, block_size=64)
        offset = 0
        for chunk in chunks:
            piecewise.append(edges[offset : offset + chunk])
            piecewise.flush()  # force partial-tail reclaim paths
            offset += chunk
        assert np.array_equal(whole.read_all(), piecewise.read_all())
        whole.unlink()
        piecewise.unlink()
