"""Tests for the out-of-core condensation builder."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps.condense_external import condense_to_disk
from repro.graph.digraph import Digraph
from repro.graph.diskgraph import DiskGraph
from repro.inmemory.condensation import condense
from repro.inmemory.tarjan import tarjan_scc

from tests.conftest import SMALL_BLOCK


def disk(tmp_path, graph, name="g.bin"):
    return DiskGraph.from_digraph(
        graph, str(tmp_path / name), block_size=SMALL_BLOCK
    )


class TestMatchesInMemoryCondensation:
    def test_figure1(self, tmp_path, figure1_graph):
        labels, count = tarjan_scc(figure1_graph)
        dg = disk(tmp_path, figure1_graph)
        out = condense_to_disk(dg, labels)
        expected = condense(figure1_graph, labels, count)
        assert out.num_nodes == expected.num_sccs
        assert out.to_digraph() == expected.dag
        out.unlink()
        dg.unlink()

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(seed=st.integers(0, 9999), n=st.integers(2, 50))
    def test_property_random(self, tmp_path, seed, n):
        rng = np.random.default_rng(seed)
        g = Digraph(n, rng.integers(0, n, size=(3 * n, 2)))
        labels, count = tarjan_scc(g)
        dg = disk(tmp_path, g, name=f"g{seed}-{n}.bin")
        out = condense_to_disk(dg, labels)
        expected = condense(g, labels, count)
        assert out.to_digraph() == expected.dag
        out.unlink()
        dg.unlink()


class TestOptions:
    def test_keep_multiplicities(self, tmp_path):
        g = Digraph(4, np.array([[0, 1], [1, 0], [0, 2], [1, 2], [0, 2]]))
        labels, _ = tarjan_scc(g)
        dg = disk(tmp_path, g)
        out = condense_to_disk(dg, labels, deduplicate=False)
        # {0,1} -> 2 appears three times (0->2 twice, 1->2 once).
        assert out.num_edges == 3
        out.unlink()
        dg.unlink()

    def test_pure_scc_graph_condenses_to_no_edges(self, tmp_path):
        n = 20
        g = Digraph(n, np.array([[i, (i + 1) % n] for i in range(n)]))
        labels, _ = tarjan_scc(g)
        dg = disk(tmp_path, g)
        out = condense_to_disk(dg, labels)
        assert out.num_nodes == 1
        assert out.num_edges == 0
        out.unlink()
        dg.unlink()

    def test_labels_validated(self, tmp_path):
        dg = disk(tmp_path, Digraph(3))
        with pytest.raises(ValueError):
            condense_to_disk(dg, np.array([0]))
        dg.unlink()

    def test_io_charged_to_shared_counter(self, tmp_path):
        from repro.workloads.synthetic import planted_scc_graph

        planted = planted_scc_graph(60, [5, 5, 5], avg_degree=4, seed=1)
        g = planted.graph  # plenty of inter-SCC edges by construction
        labels, _ = tarjan_scc(g)
        dg = disk(tmp_path, g)
        before = dg.counter.snapshot()
        out = condense_to_disk(dg, labels)
        delta = dg.counter.since(before)
        assert delta.reads > 0 and delta.writes > 0
        out.unlink()
        dg.unlink()
