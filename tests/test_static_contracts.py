"""Tier-1 tests for the static contract analyzer (repro.analysis_static).

The headline test lints the entire ``src/`` tree and requires zero
violations; the module-level exceptions it tolerates are pinned here so
any new allowlist entry has to be justified in review.  The per-rule
classes exercise each rule against violating and clean fixtures, and
the CLI class checks the ``repro-scc lint`` exit-code contract.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis_static import (
    ALL_RULES,
    Analyzer,
    BareRenameRule,
    CoreAPIRule,
    DEFAULT_ALLOWLIST,
    EdgeMaterializationRule,
    PerEdgeBoxingRule,
    RawIORule,
    SequentialScanRule,
    ThreadSocketDisciplineRule,
    Violation,
    module_relpath,
    pragma_allowances,
)
from repro.cli import main

SRC = Path(__file__).resolve().parent.parent / "src"

#: The only module-level exceptions the repo is allowed to carry.  Each
#: entry must state why the contract does not apply there; growing this
#: set is an API-review event, which is why the test pins it exactly.
ALLOWED_EXCEPTIONS = {
    # Text-interchange boundary: converts SNAP dumps to/from the binary
    # layout once, outside any counted semi-external run.
    "repro/graph/io_text.py": frozenset({"IO001"}),
    # Trace writer: persists observability records about a run; charging
    # them to the block counter would corrupt the tallies it reports.
    "repro/obs/trace.py": frozenset({"IO001"}),
    # Metrics writer: the same class of sink — JSONL snapshots and the
    # Prometheus textfile describe counted I/O and must never be part
    # of it (the regression gate's metrics re-run pins that).
    "repro/obs/sampler.py": frozenset({"IO001"}),
    # The background prefetcher: the one sanctioned lookahead reader.
    # It seeks once to position its private handle and runs the repo's
    # only permitted reader thread; its reads are deferred-accounted by
    # the consuming scan, so counted I/O matches a synchronous scan.
    "repro/io/prefetch.py": frozenset({"SCAN001"}),
}


def analyze(rule_cls, source, relpath):
    """Run a single rule over source text with no module allowlist."""
    return Analyzer(rules=[rule_cls()], allowlist={}).analyze_source(
        source, relpath
    )


class TestRepoIsClean:
    """The whole source tree satisfies its own contracts."""

    def test_allowlist_is_pinned(self):
        assert DEFAULT_ALLOWLIST == ALLOWED_EXCEPTIONS

    def test_repo_sources_are_contract_clean(self):
        analyzer = Analyzer()
        violations = analyzer.analyze_paths([str(SRC)])
        assert violations == [], "\n".join(str(v) for v in violations)
        assert analyzer.files_checked > 40


class TestEngine:
    """Violation formatting, path normalisation, and pragmas."""

    def test_violation_str_is_file_line_col_rule(self):
        violation = Violation(
            path="repro/core/x.py", line=3, col=5, rule="IO001", message="m"
        )
        assert str(violation) == "repro/core/x.py:3:5: IO001 m"

    def test_module_relpath_roots_at_repro(self):
        assert (
            module_relpath("/root/repo/src/repro/core/one_phase.py")
            == "repro/core/one_phase.py"
        )

    def test_module_relpath_passes_through_foreign_trees(self):
        assert module_relpath("/tmp/fake/core/evil.py") == "tmp/fake/core/evil.py"

    def test_pragma_single_rule(self):
        allowances = pragma_allowances("x = 1  # repro: allow[IO001]\n")
        assert allowances == {1: frozenset({"IO001"})}

    def test_pragma_list_and_star(self):
        source = "a = 1  # repro: allow[IO001, MEM001]\nb = 2  # repro: allow[*]\n"
        allowances = pragma_allowances(source)
        assert allowances[1] == frozenset({"IO001", "MEM001"})
        assert allowances[2] == frozenset({"*"})

    def test_pragma_suppresses_violation(self):
        source = "handle = open('x')  # repro: allow[IO001]\n"
        assert analyze(RawIORule, source, "repro/core/fake.py") == []

    def test_wrong_pragma_does_not_suppress(self):
        source = "handle = open('x')  # repro: allow[MEM001]\n"
        assert len(analyze(RawIORule, source, "repro/core/fake.py")) == 1

    def test_pragma_on_last_line_of_multiline_statement(self):
        # The call is reported at line 1 but the pragma sits on the
        # closing line; statement extents stretch it back up.
        source = (
            "handle = open(\n"
            "    'edges.bin',\n"
            "    'rb',\n"
            ")  # repro: allow[IO001]\n"
        )
        assert analyze(RawIORule, source, "repro/core/fake.py") == []

    def test_pragma_on_first_line_of_multiline_statement(self):
        source = (
            "handle = open(  # repro: allow[IO001]\n"
            "    'edges.bin',\n"
            "    'rb',\n"
            ")\n"
        )
        assert analyze(RawIORule, source, "repro/core/fake.py") == []

    def test_pragma_in_compound_body_does_not_excuse_the_header(self):
        # Extents for compound statements cover the header only: a
        # pragma buried in the body must not blanket the whole block.
        source = (
            "if flag:\n"
            "    a = 1  # repro: allow[IO001]\n"
            "    handle = open('edges.bin', 'rb')\n"
        )
        assert len(analyze(RawIORule, source, "repro/core/fake.py")) == 1

    def test_module_allowlist_suppresses_whole_module(self):
        analyzer = Analyzer(
            rules=[RawIORule()],
            allowlist={"repro/core/fake.py": frozenset({"IO001"})},
        )
        assert analyzer.analyze_source("open('x')\n", "repro/core/fake.py") == []


class TestRawIORule:
    """IO001: raw file I/O outside repro/io/."""

    @pytest.mark.parametrize(
        "snippet",
        [
            "handle = open('edges.bin', 'rb')\n",
            "import os\nfd = os.open('edges.bin', 0)\n",
            "import os\ndata = os.read(3, 4096)\n",
            "import numpy as np\nedges = np.loadtxt('edges.txt')\n",
            "import numpy as np\nedges = np.fromfile('edges.bin')\n",
            "import mmap\nview = mmap.mmap(3, 0)\n",
            "import io\nhandle = io.open('x')\n",
            "array.tofile('dump.bin')\n",
            "text = some_path.read_bytes()\n",
        ],
    )
    def test_flags_raw_io_in_core(self, snippet):
        violations = analyze(RawIORule, snippet, "repro/core/fake.py")
        assert violations, snippet
        assert all(v.rule == "IO001" for v in violations)

    def test_does_not_apply_inside_io_package(self):
        source = "handle = open('edges.bin', 'rb')\n"
        assert analyze(RawIORule, source, "repro/io/blocks.py") == []

    def test_clean_module_passes(self):
        source = (
            "def run(graph):\n"
            "    for batch in graph.edge_file.scan():\n"
            "        process(batch)\n"
        )
        assert analyze(RawIORule, source, "repro/core/fake.py") == []

    def test_unrelated_attribute_read_is_clean(self):
        assert analyze(RawIORule, "x = parser.read\n", "repro/core/fake.py") == []


class TestEdgeMaterializationRule:
    """MEM001: O(|E|) materialization in core/spanning."""

    def test_flags_list_over_edge_iterator(self):
        source = "edges = list(graph.scan_edges())\n"
        violations = analyze(EdgeMaterializationRule, source, "repro/core/fake.py")
        assert [v.rule for v in violations] == ["MEM001"]

    def test_flags_sorted_over_edge_name(self):
        source = "ordered = sorted(edges)\n"
        violations = analyze(EdgeMaterializationRule, source, "repro/core/fake.py")
        assert [v.rule for v in violations] == ["MEM001"]

    def test_flags_read_all(self):
        source = "edges = edge_file.read_all()\n"
        violations = analyze(
            EdgeMaterializationRule, source, "repro/spanning/fake.py"
        )
        assert [v.rule for v in violations] == ["MEM001"]

    def test_flags_tolist_on_edge_array(self):
        source = "pairs = edges.tolist()\n"
        violations = analyze(EdgeMaterializationRule, source, "repro/core/fake.py")
        assert [v.rule for v in violations] == ["MEM001"]

    def test_flags_per_edge_set_accumulation_across_scan(self):
        source = (
            "def run(edge_file):\n"
            "    seen = set()\n"
            "    for batch in edge_file.scan():\n"
            "        for u, v in batch:\n"
            "            seen.add((u, v))\n"
        )
        violations = analyze(EdgeMaterializationRule, source, "repro/core/fake.py")
        assert [v.rule for v in violations] == ["MEM001"]

    def test_flags_per_edge_dict_assignment_across_scan(self):
        source = (
            "def run(edge_file):\n"
            "    weight = {}\n"
            "    for batch in edge_file.scan():\n"
            "        for u, v in batch:\n"
            "            weight[(u, v)] = 1\n"
        )
        violations = analyze(EdgeMaterializationRule, source, "repro/core/fake.py")
        assert [v.rule for v in violations] == ["MEM001"]

    def test_per_batch_local_container_is_clean(self):
        source = (
            "def run(edge_file):\n"
            "    for batch in edge_file.scan():\n"
            "        local = []\n"
            "        for u, v in batch:\n"
            "            local.append(u)\n"
            "        flush(local)\n"
        )
        assert (
            analyze(EdgeMaterializationRule, source, "repro/core/fake.py") == []
        )

    def test_non_edge_list_call_is_clean(self):
        source = "roots = list(tree.roots())\n"
        assert (
            analyze(EdgeMaterializationRule, source, "repro/core/fake.py") == []
        )

    def test_does_not_apply_outside_algorithm_packages(self):
        source = "edges = edge_file.read_all()\n"
        assert analyze(EdgeMaterializationRule, source, "repro/io/fake.py") == []


class TestBareRenameRule:
    """IO002: bare renames outside the atomic-rewrite module."""

    @pytest.mark.parametrize(
        "snippet",
        [
            "import os\nos.replace('a.staging', 'a.bin')\n",
            "import os\nos.rename('a.staging', 'a.bin')\n",
            "import os\nos.renames('a.staging', 'a.bin')\n",
            "import shutil\nshutil.move('a.staging', 'a.bin')\n",
        ],
    )
    def test_flags_bare_renames(self, snippet):
        violations = analyze(BareRenameRule, snippet, "repro/io/edgefile.py")
        assert [v.rule for v in violations] == ["IO002"], snippet
        assert "repro.io.atomic" in violations[0].message

    def test_atomic_module_is_exempt(self):
        source = "import os\nos.replace(staging, target)\n"
        assert analyze(BareRenameRule, source, "repro/io/atomic.py") == []

    def test_pragma_excuses_a_deliberate_rename(self):
        source = (
            "import os\n"
            "os.replace(a, b)  # repro: allow[IO002]\n"
        )
        assert analyze(BareRenameRule, source, "repro/io/checkpoint.py") == []

    def test_string_replace_is_clean(self):
        source = "name = workload.replace('/', '_')\n"
        assert analyze(BareRenameRule, source, "repro/bench/harness.py") == []

    def test_os_path_helpers_are_clean(self):
        source = "import os\nparent = os.path.dirname(os.path.abspath(p))\n"
        assert analyze(BareRenameRule, source, "repro/io/checkpoint.py") == []

    def test_real_atomic_module_is_the_only_rename_site(self):
        # The protocol module itself must pass via scoping, not pragmas.
        source = (SRC / "repro" / "io" / "atomic.py").read_text()
        assert Analyzer(
            rules=[BareRenameRule()], allowlist={}
        ).analyze_source(source, "repro/io/atomic.py") == []


class TestSequentialScanRule:
    """SCAN001: seeks and lookahead reader threads outside their homes."""

    def test_flags_seek_in_core(self):
        source = "handle.seek(block * 4096)\n"
        violations = analyze(SequentialScanRule, source, "repro/core/fake.py")
        assert [v.rule for v in violations] == ["SCAN001"]

    def test_blocks_py_is_exempt(self):
        source = "handle.seek(block * 4096)\n"
        assert analyze(SequentialScanRule, source, "repro/io/blocks.py") == []

    def test_other_io_modules_are_not_exempt(self):
        source = "handle.seek(0)\n"
        violations = analyze(SequentialScanRule, source, "repro/io/edgefile.py")
        assert [v.rule for v in violations] == ["SCAN001"]

    def test_forward_scan_is_clean(self):
        source = "for batch in edge_file.scan():\n    pass\n"
        assert analyze(SequentialScanRule, source, "repro/core/fake.py") == []

    def test_flags_thread_construction_outside_prefetch(self):
        source = (
            "import threading\n"
            "worker = threading.Thread(target=read_ahead)\n"
        )
        violations = analyze(SequentialScanRule, source, "repro/core/fake.py")
        assert [v.rule for v in violations] == ["SCAN001"]
        assert "lookahead" in violations[0].message

    def test_flags_bare_thread_name_in_io(self):
        source = "from threading import Thread\nThread(target=pump).start()\n"
        violations = analyze(SequentialScanRule, source, "repro/io/edgefile.py")
        assert [v.rule for v in violations] == ["SCAN001"]

    def test_prefetch_module_is_allowlisted_for_lookahead(self):
        # Via the default allowlist (not a structural exemption): the
        # prefetcher's seek + reader thread are sanctioned there and
        # only there.
        analyzer = Analyzer(rules=[SequentialScanRule()])
        source = (
            "import threading\n"
            "handle.seek(64 * 1024)\n"
            "threading.Thread(target=pump).start()\n"
        )
        assert analyzer.analyze_source(source, "repro/io/prefetch.py") == []
        flagged = analyzer.analyze_source(source, "repro/io/other.py")
        assert sorted({v.rule for v in flagged}) == ["SCAN001"]
        assert len(flagged) == 2

    def test_real_prefetch_module_lints_clean_only_via_allowlist(self):
        source = (SRC / "repro" / "io" / "prefetch.py").read_text()
        assert Analyzer().analyze_source(source, "repro/io/prefetch.py") == []
        bare = Analyzer(rules=[SequentialScanRule()], allowlist={})
        violations = bare.analyze_source(source, "repro/io/prefetch.py")
        assert violations, "prefetch.py should need its SCAN001 allowance"
        assert {v.rule for v in violations} == {"SCAN001"}


class TestCoreAPIRule:
    """API001: public core API must not take raw paths."""

    def test_flags_public_function_with_path_param(self):
        source = "def load(path: str):\n    pass\n"
        violations = analyze(CoreAPIRule, source, "repro/core/fake.py")
        assert [v.rule for v in violations] == ["API001"]

    def test_flags_pathlike_annotation(self):
        source = "def load(source: os.PathLike):\n    pass\n"
        violations = analyze(CoreAPIRule, source, "repro/core/fake.py")
        assert [v.rule for v in violations] == ["API001"]

    def test_private_function_is_clean(self):
        source = "def _load(path: str):\n    pass\n"
        assert analyze(CoreAPIRule, source, "repro/core/fake.py") == []

    def test_graph_typed_params_are_clean(self):
        source = (
            "def run(graph: DiskGraph, edge_file: EdgeFile):\n    pass\n"
        )
        assert analyze(CoreAPIRule, source, "repro/core/fake.py") == []

    def test_does_not_apply_outside_core(self):
        source = "def load(path: str):\n    pass\n"
        assert analyze(CoreAPIRule, source, "repro/graph/fake.py") == []


class TestPerEdgeBoxingRule:
    """CPU001: per-edge boxing inside core edge-scan loops."""

    def test_flags_int_inside_scan_loop(self):
        source = (
            "def run(current, tree):\n"
            "    for batch in current.scan():\n"
            "        for u, v in batch.tolist():\n"
            "            a = int(tree.parent[u])\n"
        )
        violations = analyze(PerEdgeBoxingRule, source, "repro/core/fake.py")
        assert sorted(v.rule for v in violations) == ["CPU001", "CPU001"]
        messages = " ".join(v.message for v in violations)
        assert "int()" in messages and ".tolist()" in messages

    def test_pragma_excuses_per_batch_reduction(self):
        source = (
            "def run(current):\n"
            "    for batch in current.scan():\n"
            "        lo = int(batch.min())  # repro: allow[CPU001]\n"
        )
        assert analyze(PerEdgeBoxingRule, source, "repro/core/fake.py") == []

    def test_boxing_outside_scan_loop_is_clean(self):
        source = (
            "def summarize(tree):\n"
            "    depths = tree.depth.tolist()\n"
            "    return int(max(depths))\n"
        )
        assert analyze(PerEdgeBoxingRule, source, "repro/core/fake.py") == []

    def test_kernels_package_is_out_of_scope(self):
        source = (
            "def scalar_scan(current):\n"
            "    for batch in current.scan():\n"
            "        for u, v in batch.tolist():\n"
            "            yield int(u), int(v)\n"
        )
        assert analyze(PerEdgeBoxingRule, source, "repro/kernels/scalar.py") == []

    def test_kernel_dispatch_loop_is_clean(self):
        source = (
            "def run(current, tree, kernel):\n"
            "    for batch in current.scan():\n"
            "        accepts, pushed, big = kernel.one_phase_scan(tree, batch)\n"
        )
        assert analyze(PerEdgeBoxingRule, source, "repro/core/fake.py") == []


class TestLintCLI:
    """The ``repro-scc lint`` subcommand's exit-code contract."""

    def test_lint_repo_exits_zero(self, capsys):
        assert main(["lint", str(SRC)]) == 0
        assert "contract-clean" in capsys.readouterr().out

    def test_lint_names_rule_and_location_on_violation(self, tmp_path, capsys):
        fake_core = tmp_path / "fake" / "core"
        fake_core.mkdir(parents=True)
        evil = fake_core / "evil.py"
        evil.write_text("handle = open('edges.bin', 'rb')\n")
        assert main(["lint", str(tmp_path)]) == 1
        captured = capsys.readouterr()
        assert "IO001" in captured.out
        assert "evil.py:1:" in captured.out
        assert "1 contract violation(s)" in captured.err

    def test_lint_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_cls in ALL_RULES:
            assert rule_cls.rule_id in out

    def test_missing_path_is_a_clean_error(self, capsys):
        assert main(["lint", "/no/such/dir"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unparseable_source_is_a_clean_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        assert main(["lint", str(tmp_path)]) == 2
        captured = capsys.readouterr()
        assert "cannot parse" in captured.err
        assert "bad.py" in captured.err

    def test_no_default_allowlist_surfaces_io_text(self, capsys):
        code = main(["lint", "--no-default-allowlist", str(SRC)])
        out = capsys.readouterr().out
        assert code == 1
        assert "io_text.py" in out


class TestThreadSocketDisciplineRule:
    """THR004: thread/socket containment + mandatory queue bounds."""

    def test_socket_import_flagged_outside_homes(self):
        src = "import socket\n"
        violations = analyze(
            ThreadSocketDisciplineRule, src, "repro/core/one_phase.py"
        )
        assert [v.rule for v in violations] == ["THR004"]

    def test_socketserver_from_import_flagged(self):
        src = "from socketserver import ThreadingTCPServer\n"
        violations = analyze(
            ThreadSocketDisciplineRule, src, "repro/apps/toposort.py"
        )
        assert len(violations) == 1

    def test_thread_construction_flagged_outside_homes(self):
        src = (
            "import threading\n"
            "def go():\n"
            "    t = threading.Thread(target=print)\n"
            "    t.start()\n"
        )
        violations = analyze(
            ThreadSocketDisciplineRule, src, "repro/graph/storage.py"
        )
        assert [v.rule for v in violations] == ["THR004"]

    def test_service_and_obs_may_use_threads_and_sockets(self):
        src = (
            "import socket\n"
            "import threading\n"
            "def serve():\n"
            "    listener = socket.socket()\n"
            "    threading.Thread(target=listener.accept).start()\n"
        )
        for relpath in ("repro/service/server.py", "repro/obs/sampler.py"):
            assert analyze(ThreadSocketDisciplineRule, src, relpath) == []

    def test_unbounded_queue_flagged_everywhere(self):
        src = "import queue\nbuf = queue.Queue()\n"
        for relpath in ("repro/service/server.py", "repro/core/x.py"):
            violations = analyze(ThreadSocketDisciplineRule, src, relpath)
            assert [v.rule for v in violations] == ["THR004"], relpath

    def test_bounded_queue_accepted(self):
        src = (
            "import queue\n"
            "a = queue.Queue(maxsize=64)\n"
            "b = queue.Queue(8)\n"
        )
        assert analyze(
            ThreadSocketDisciplineRule, src, "repro/service/server.py"
        ) == []

    def test_simple_queue_always_flagged(self):
        src = "import queue\nbuf = queue.SimpleQueue()\n"
        violations = analyze(
            ThreadSocketDisciplineRule, src, "repro/service/server.py"
        )
        assert len(violations) == 1
        assert "bounded" in violations[0].message

    def test_multiprocessing_queue_needs_bound(self):
        src = (
            "import multiprocessing\n"
            "q = multiprocessing.Queue()\n"
            "ok = multiprocessing.Queue(maxsize=4)\n"
        )
        violations = analyze(
            ThreadSocketDisciplineRule, src, "repro/parallel/pool.py"
        )
        assert len(violations) == 1

    def test_pragma_excuses_a_sanctioned_thread(self):
        src = (
            "import threading\n"
            "t = threading.Thread(  # repro: allow[THR004]\n"
            "    target=print,\n"
            ")\n"
        )
        assert analyze(
            ThreadSocketDisciplineRule, src, "repro/io/prefetch.py"
        ) == []
