"""Tier-1 tests for the I/O-complexity passes (SCAN002 / SCAN003)."""

from __future__ import annotations

from repro.analysis_static.engine import ModuleSource
from repro.analysis_static.iocost import (
    NestedScanRule,
    UnboundedScanLoopRule,
    cost_report,
)

CORE = "repro/core/algo.py"
UTIL = "repro/util/helpers.py"


def run_rule(rule_cls, *module_sources):
    """Run ``rule_cls`` over ``(relpath, source)`` pairs, return violations."""
    modules = [
        ModuleSource.from_source(source, relpath)
        for relpath, source in module_sources
    ]
    return rule_cls().check_program(modules)


class TestNestedScan:
    def test_lexical_nesting_is_flagged(self):
        source = (
            "def cross(a, b):\n"
            "    for outer in a.scan():\n"
            "        for inner in b.scan():\n"
            "            use(outer, inner)\n"
        )
        found = run_rule(NestedScanRule, (CORE, source))
        assert [v.rule for v in found] == ["SCAN002"]
        assert found[0].line == 3

    def test_interprocedural_nesting_is_flagged(self):
        source = (
            "def rescued(edge_file):\n"
            "    for batch in edge_file.scan():\n"
            "        count_all(edge_file)\n"
            "def count_all(edge_file):\n"
            "    for batch in edge_file.scan():\n"
            "        pass\n"
        )
        found = run_rule(NestedScanRule, (CORE, source))
        assert [v.rule for v in found] == ["SCAN002"]
        assert "count_all" in found[0].message

    def test_sequential_scans_are_clean(self):
        source = (
            "def two_pass(edge_file):\n"
            "    for batch in edge_file.scan():\n"
            "        use(batch)\n"
            "    for batch in edge_file.scan():\n"
            "        use(batch)\n"
        )
        assert run_rule(NestedScanRule, (CORE, source)) == []

    def test_only_algorithm_packages_are_in_scope(self):
        source = (
            "def cross(a, b):\n"
            "    for outer in a.scan():\n"
            "        for inner in b.scan():\n"
            "            use(outer, inner)\n"
        )
        assert run_rule(NestedScanRule, (UTIL, source)) == []


class TestUnboundedScanLoop:
    def test_while_true_scan_is_flagged(self):
        source = (
            "def retry(edge_file):\n"
            "    while True:\n"
            "        for batch in edge_file.scan():\n"
            "            use(batch)\n"
        )
        found = run_rule(UnboundedScanLoopRule, (CORE, source))
        assert [v.rule for v in found] == ["SCAN003"]

    def test_guarded_exit_is_a_termination_witness(self):
        source = (
            "def retry(edge_file, max_rounds):\n"
            "    rounds = 0\n"
            "    while True:\n"
            "        for batch in edge_file.scan():\n"
            "            use(batch)\n"
            "        rounds += 1\n"
            "        if rounds >= max_rounds:\n"
            "            break\n"
        )
        assert run_rule(UnboundedScanLoopRule, (CORE, source)) == []

    def test_body_assignment_to_test_name_is_a_witness(self):
        source = (
            "def contract(edge_file):\n"
            "    changed = True\n"
            "    while changed:\n"
            "        changed = False\n"
            "        for batch in edge_file.scan():\n"
            "            changed = step(batch) or changed\n"
        )
        assert run_rule(UnboundedScanLoopRule, (CORE, source)) == []

    def test_unchanging_test_name_is_flagged(self):
        source = (
            "def stuck(edge_file, flag):\n"
            "    while flag:\n"
            "        for batch in edge_file.scan():\n"
            "            use(batch)\n"
        )
        found = run_rule(UnboundedScanLoopRule, (CORE, source))
        assert [v.rule for v in found] == ["SCAN003"]

    def test_attribute_test_is_conservatively_bounded(self):
        source = (
            "def poll(self, edge_file):\n"
            "    while self.running:\n"
            "        for batch in edge_file.scan():\n"
            "            use(batch)\n"
        )
        assert run_rule(UnboundedScanLoopRule, (CORE, source)) == []

    def test_scan_via_callee_is_still_counted(self):
        source = (
            "def retry(edge_file):\n"
            "    while True:\n"
            "        one_pass(edge_file)\n"
            "def one_pass(edge_file):\n"
            "    for batch in edge_file.scan():\n"
            "        use(batch)\n"
        )
        found = run_rule(UnboundedScanLoopRule, (CORE, source))
        assert [v.rule for v in found] == ["SCAN003"]

    def test_out_of_scope_paths_are_silent(self):
        source = (
            "def retry(edge_file):\n"
            "    while True:\n"
            "        for batch in edge_file.scan():\n"
            "            use(batch)\n"
        )
        assert run_rule(UnboundedScanLoopRule, (UTIL, source)) == []


class TestCostReport:
    def test_report_classifies_each_shape(self):
        source = (
            "def single(edge_file):\n"
            "    for batch in edge_file.scan():\n"
            "        use(batch)\n"
            "def per_round(edge_file, rounds):\n"
            "    for _ in range(rounds):\n"
            "        for batch in edge_file.scan():\n"
            "            use(batch)\n"
            "def quadratic(a, b):\n"
            "    for outer in a.scan():\n"
            "        for inner in b.scan():\n"
            "            use(outer, inner)\n"
            "def silent():\n"
            "    pass\n"
        )
        report = cost_report([ModuleSource.from_source(source, CORE)])
        lines = {
            line.split()[1]: line
            for line in report.splitlines()
            if line.startswith(CORE)
        }
        assert "O(scan(|E|))" in lines["single"]
        assert "O(h * scan(|E|))" in lines["per_round"]
        assert "O(|E|^2/B)" in lines["quadratic"]
        assert "silent" not in lines

    def test_report_on_the_real_tree_mentions_em_scc(self):
        from repro.analysis_static.engine import Analyzer

        modules = Analyzer().load_paths(["src"])
        report = cost_report(modules)
        assert "repro/core/em_scc.py" in report
        assert "O(|E|^2/B)" not in report

    def test_empty_input_says_so(self):
        assert "no scanning functions" in cost_report([])
