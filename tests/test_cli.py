"""End-to-end tests for the repro-scc command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.graph.digraph import Digraph
from repro.graph.io_text import write_edge_list
from repro.graph.storage import save_graph


@pytest.fixture
def stored_graph(tmp_path):
    rng = np.random.default_rng(0)
    graph = Digraph(200, rng.integers(0, 200, size=(900, 2)))
    path = str(tmp_path / "g.rgr")
    save_graph(graph, path, attributes={"kind": "test"})
    return path, graph


class TestGenerate:
    def test_generate_synthetic(self, tmp_path, capsys):
        out = str(tmp_path / "m.rgr")
        code = main(["generate", "--kind", "massive", "--scale", "3e-5",
                     "--out", out])
        assert code == 0
        assert "nodes" in capsys.readouterr().out

    def test_generate_webspam(self, tmp_path, capsys):
        out = str(tmp_path / "w.rgr")
        code = main(["generate", "--kind", "webspam", "--scale", "2e-5",
                     "--out", out])
        assert code == 0

    @pytest.mark.parametrize(
        "kind",
        ["cit-patents", "go-uniprot", "citeseerx", "large", "small"],
    )
    def test_generate_every_kind(self, tmp_path, kind, capsys):
        from repro.graph.storage import read_metadata

        out = str(tmp_path / f"{kind}.rgr")
        assert main(["generate", "--kind", kind, "--scale", "2e-5",
                     "--out", out]) == 0
        meta = read_metadata(out)
        assert meta["num_nodes"] >= 1000
        assert meta["attributes"]["kind"] == kind


class TestImportInfo:
    def test_import_then_info(self, tmp_path, capsys):
        text = str(tmp_path / "e.txt")
        write_edge_list(Digraph(4, np.array([[0, 1], [1, 0], [2, 3]])), text)
        out = str(tmp_path / "i.rgr")
        assert main(["import", text, "--out", out]) == 0
        assert main(["info", out]) == 0
        captured = capsys.readouterr().out
        assert "nodes:      4" in captured

    def test_info_full(self, stored_graph, capsys):
        path, _ = stored_graph
        assert main(["info", path, "--full"]) == 0
        assert "avg degree" in capsys.readouterr().out

    def test_info_missing_graph(self, tmp_path, capsys):
        assert main(["info", str(tmp_path / "nope.rgr")]) == 1
        assert "error" in capsys.readouterr().err


class TestCompute:
    def test_compute_prints_stats_and_writes_labels(
        self, stored_graph, tmp_path, capsys
    ):
        path, graph = stored_graph
        labels_out = str(tmp_path / "labels.npy")
        code = main(["compute", path, "--algorithm", "1PB-SCC",
                     "--labels-out", labels_out])
        assert code == 0
        out = capsys.readouterr().out
        assert "SCCs" in out and "block I/Os" in out
        labels = np.load(labels_out)
        assert labels.shape == (graph.num_nodes,)

    def test_compute_kernels_flag_scalar_matches_vector(
        self, stored_graph, tmp_path, capsys
    ):
        path, _ = stored_graph
        outputs = {}
        for kernels in ("vector", "scalar"):
            labels_out = str(tmp_path / f"labels-{kernels}.npy")
            assert main(["compute", path, "--algorithm", "1P-SCC",
                         "--kernels", kernels,
                         "--labels-out", labels_out]) == 0
            outputs[kernels] = np.load(labels_out)
            capsys.readouterr()
        assert np.array_equal(outputs["vector"], outputs["scalar"])

    def test_compute_rejects_unknown_kernels(self, stored_graph, capsys):
        path, _ = stored_graph
        with pytest.raises(SystemExit):
            main(["compute", path, "--kernels", "simd"])

    def test_compute_profile_writes_pstats_dump(
        self, stored_graph, tmp_path, capsys
    ):
        import pstats

        path, _ = stored_graph
        profile_out = str(tmp_path / "compute.pstats")
        assert main(["compute", path, "--algorithm", "1PB-SCC",
                     "--profile", profile_out]) == 0
        out = capsys.readouterr().out
        assert "profile:" in out and profile_out in out
        stats = pstats.Stats(profile_out)
        assert stats.total_calls > 0

    def test_compute_profile_kept_on_timeout(self, stored_graph, tmp_path, capsys):
        path, _ = stored_graph
        profile_out = str(tmp_path / "timeout.pstats")
        code = main(["compute", path, "--algorithm", "DFS-SCC",
                     "--time-limit", "0", "--profile", profile_out])
        assert code == 2
        import pstats

        assert pstats.Stats(profile_out).total_calls > 0

    def test_compute_timeout_exit_code(self, stored_graph, capsys):
        path, _ = stored_graph
        code = main(["compute", path, "--algorithm", "DFS-SCC",
                     "--time-limit", "0"])
        assert code == 2
        assert "INF" in capsys.readouterr().err

    def test_compute_dnf_exit_code(self, tmp_path, capsys):
        # A long chain DAG with EM-SCC and minimal memory cannot finish.
        n = 3000
        graph = Digraph(n, np.array([[i, i + 1] for i in range(n - 1)]))
        path = str(tmp_path / "chain.rgr")
        save_graph(graph, path, block_size=4096)
        code = main(["compute", path, "--algorithm", "EM-SCC",
                     "--block-size", "4096", "--memory-factor", "0.4"])
        assert code == 3
        assert "DNF" in capsys.readouterr().err


class TestTraceAndReport:
    def test_compute_trace_writes_valid_trace(
        self, stored_graph, tmp_path, capsys
    ):
        from repro.obs import load_trace, validate_trace

        path, _ = stored_graph
        trace_path = str(tmp_path / "run.jsonl")
        code = main(["compute", path, "--algorithm", "2P-SCC",
                     "--trace", trace_path])
        assert code == 0
        assert "trace:" in capsys.readouterr().out
        trace = load_trace(trace_path)
        assert validate_trace(trace) == []
        assert trace.metadata["algorithm"] == "2P-SCC"
        assert (tmp_path / "run.jsonl.summary.json").exists()

    def test_report_renders_phase_summary(self, stored_graph, tmp_path, capsys):
        path, _ = stored_graph
        trace_path = str(tmp_path / "run.jsonl")
        assert main(["compute", path, "--algorithm", "2P-SCC",
                     "--trace", trace_path]) == 0
        capsys.readouterr()
        assert main(["report", trace_path]) == 0
        out = capsys.readouterr().out
        assert "tree-search: 1 sequential edge scan," in out
        assert "phases:" in out and "files:" in out

    def test_report_check_passes_on_valid_trace(
        self, stored_graph, tmp_path, capsys
    ):
        path, _ = stored_graph
        trace_path = str(tmp_path / "run.jsonl")
        assert main(["compute", path, "--algorithm", "1P-SCC",
                     "--trace", trace_path]) == 0
        capsys.readouterr()
        assert main(["report", trace_path, "--check"]) == 0
        assert "OK:" in capsys.readouterr().out

    def test_report_check_fails_on_truncated_trace(self, tmp_path, capsys):
        import json

        trace_path = str(tmp_path / "cut.jsonl")
        with open(trace_path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"type": "header", "schema_version": 1,
                                     "metadata": {}}) + "\n")
        assert main(["report", trace_path, "--check"]) == 1
        assert "summary" in capsys.readouterr().err

    def test_report_missing_file_is_an_error(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "none.jsonl")]) == 1
        assert "error" in capsys.readouterr().err

    def test_verbose_flag_enables_logging(self, stored_graph, capsys):
        import logging

        path, _ = stored_graph
        previous = logging.getLogger("repro").level
        try:
            assert main(["-vv", "info", path]) == 0
            assert logging.getLogger("repro").level == logging.DEBUG
        finally:
            logging.getLogger("repro").setLevel(previous)

    def test_repro_log_env_sets_level(self, stored_graph, monkeypatch):
        import logging

        path, _ = stored_graph
        previous = logging.getLogger("repro").level
        monkeypatch.setenv("REPRO_LOG", "debug")
        try:
            assert main(["info", path]) == 0
            assert logging.getLogger("repro").level == logging.DEBUG
        finally:
            logging.getLogger("repro").setLevel(previous)


class TestMetricsCommands:
    def test_compute_metrics_writes_valid_snapshots_and_exposition(
        self, stored_graph, tmp_path, capsys
    ):
        from repro.obs import load_metrics, parse_prometheus_text, validate_metrics

        path, _ = stored_graph
        metrics_path = str(tmp_path / "run.metrics.jsonl")
        code = main(["compute", path, "--algorithm", "1P-SCC",
                     "--metrics", metrics_path,
                     "--metrics-interval", "0.05"])
        assert code == 0
        assert "metrics:" in capsys.readouterr().out
        data = load_metrics(metrics_path)
        assert validate_metrics(data) == []
        assert data.samples, "at least the final sample must be written"
        final = data.samples[-1]["values"]
        read_total = sum(
            value for series, value in final["counters"].items()
            if series.startswith("repro_io_read_blocks_total")
        )
        assert read_total > 0
        exposition = open(metrics_path + ".prom").read()  # repro: allow[IO001]
        assert parse_prometheus_text(exposition)

    def test_compute_metrics_does_not_change_counted_io(
        self, stored_graph, tmp_path, capsys
    ):
        path, _ = stored_graph
        assert main(["compute", path, "--algorithm", "1P-SCC"]) == 0
        plain = capsys.readouterr().out
        metrics_path = str(tmp_path / "m.jsonl")
        assert main(["compute", path, "--algorithm", "1P-SCC",
                     "--metrics", metrics_path]) == 0
        metered = capsys.readouterr().out

        def io_line(out):
            return [line for line in out.splitlines()
                    if "block I/Os" in line or "ios" in line.lower()][0]

        assert io_line(plain) == io_line(metered)

    def test_metrics_check_accepts_fresh_output(self, stored_graph,
                                                tmp_path, capsys):
        path, _ = stored_graph
        metrics_path = str(tmp_path / "run.metrics.jsonl")
        assert main(["compute", path, "--algorithm", "1P-SCC",
                     "--metrics", metrics_path]) == 0
        capsys.readouterr()
        code = main(["metrics", "check", metrics_path,
                     "--prom", metrics_path + ".prom"])
        assert code == 0
        out = capsys.readouterr().out
        assert "OK:" in out

    def test_metrics_check_rejects_truncated_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type": "sample", "seq": 0}\n')
        assert main(["metrics", "check", str(bad)]) == 1
        assert "error" in capsys.readouterr().err

    def test_compute_heartbeat_prints_progress(self, stored_graph, capsys):
        path, _ = stored_graph
        code = main(["compute", path, "--algorithm", "1P-SCC",
                     "--heartbeat", "0.02"])
        assert code == 0
        err = capsys.readouterr().err
        assert "1P-SCC" in err and "iter" in err


class TestCompare:
    def test_compare_table(self, stored_graph, capsys):
        path, _ = stored_graph
        code = main(["compare", path, "--algorithms", "1PB-SCC", "1P-SCC"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Time" in out and "1PB-SCC" in out and "1P-SCC" in out


class TestCondenseAndToposort:
    def test_condense_writes_openable_graph(self, stored_graph, tmp_path, capsys):
        from repro.graph.storage import open_disk_graph
        from repro.inmemory.toposort import topological_sort

        path, _ = stored_graph
        out = str(tmp_path / "c.rgr")
        assert main(["condense", path, "--out", out]) == 0
        assert "SCC nodes" in capsys.readouterr().out
        condensed = open_disk_graph(out)
        topological_sort(condensed.to_digraph())  # must be a DAG
        condensed.close()

    def test_condense_with_precomputed_labels(self, stored_graph, tmp_path):
        from repro.graph.storage import load_graph
        from repro.inmemory.tarjan import tarjan_scc

        path, graph = stored_graph
        labels, _ = tarjan_scc(graph)
        labels_path = str(tmp_path / "labels.npy")
        np.save(labels_path, labels)
        out = str(tmp_path / "c2.rgr")
        assert main(["condense", path, "--out", out,
                     "--labels", labels_path]) == 0
        condensed = load_graph(out)
        assert condensed.num_nodes == int(labels.max()) + 1

    def test_toposort_reports_layers(self, stored_graph, tmp_path, capsys):
        path, graph = stored_graph
        out = str(tmp_path / "layers.npy")
        assert main(["toposort", path, "--out", out]) == 0
        assert "layers" in capsys.readouterr().out
        layers = np.load(out)
        assert layers.shape == (graph.num_nodes,)


class TestBenchCommand:
    def test_bench_single_experiment(self, tmp_path, capsys):
        outdir = str(tmp_path / "results")
        code = main(["bench", "--experiments", "table1",
                     "--scale", "2e-5", "--outdir", outdir])
        assert code == 0
        out = capsys.readouterr().out
        assert "table1" in out
        assert (tmp_path / "results" / "table1.csv").exists()
        assert (tmp_path / "results" / "report.txt").exists()


class TestLint:
    """Exit codes and artifact outputs of ``repro-scc lint``."""

    FIXTURES = "tests/lint_fixtures"

    def test_fixture_package_yields_exactly_the_seeded_rules(self, capsys):
        code = main(["lint", self.FIXTURES, "--no-baseline"])
        assert code == 1
        out = capsys.readouterr().out
        rules = {
            line.split()[1]
            for line in out.splitlines()
            if ": " in line and line.split(":")[0].endswith(".py")
        }
        assert rules == {"SCAN002", "THR001", "IO003", "IO001", "THR003", "THR004"}

    def test_clean_tree_exits_zero(self, capsys):
        assert main(["lint", "src"]) == 0
        assert "contract-clean" in capsys.readouterr().out

    def test_unreadable_path_exits_two(self, tmp_path, capsys):
        missing = str(tmp_path / "nowhere.py")
        assert main(["lint", missing]) == 2
        assert "error" in capsys.readouterr().err

    def test_analyzer_crash_exits_two(self, monkeypatch, capsys):
        from repro.analysis_static.engine import Analyzer

        def boom(self, modules):
            raise RuntimeError("internal pass exploded")

        monkeypatch.setattr(Analyzer, "analyze_modules", boom)
        assert main(["lint", "src"]) == 2
        err = capsys.readouterr().err
        assert "analyzer failed" in err
        assert "internal pass exploded" in err

    def test_sarif_artifact_is_written_and_valid(self, tmp_path, capsys):
        import json

        from repro.analysis_static.sarif import validate_sarif

        sarif_path = str(tmp_path / "lint.sarif")
        code = main(
            ["lint", self.FIXTURES, "--no-baseline", "--sarif", sarif_path]
        )
        assert code == 1
        capsys.readouterr()
        log = json.loads(open(sarif_path).read())  # repro: allow[IO001]
        assert validate_sarif(log) == []
        rule_ids = {r["ruleId"] for r in log["runs"][0]["results"]}
        assert rule_ids == {"SCAN002", "THR001", "IO003", "IO001", "THR003", "THR004"}

    def test_cost_report_flag_prints_the_table(self, capsys):
        assert main(["lint", "src", "--cost-report"]) == 0
        out = capsys.readouterr().out
        assert "Counted-I/O cost inference" in out
        assert "repro/core/em_scc.py" in out

    def test_write_baseline_then_lint_is_clean(self, tmp_path, capsys):
        baseline = str(tmp_path / "baseline.json")
        assert main(
            ["lint", self.FIXTURES, "--write-baseline",
             "--baseline", baseline]
        ) == 0
        capsys.readouterr()
        code = main(["lint", self.FIXTURES, "--baseline", baseline])
        assert code == 0
        assert "baselined" in capsys.readouterr().out

    def test_malformed_baseline_exits_two(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        baseline.write_text('{"findings": [{"path": "only"}]}')
        code = main(
            ["lint", self.FIXTURES, "--baseline", str(baseline)]
        )
        assert code == 2
        assert "malformed baseline" in capsys.readouterr().err
