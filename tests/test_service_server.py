"""End-to-end daemon tests: the full degradation contract over the wire.

Each test boots a real :class:`~repro.service.server.SCCServer` on an
ephemeral port and talks the line-framed JSON protocol to it.  The
graph is small and known (two 3-cycles bridged, plus a tail node), so
every answer can be checked against ground truth — the contract under
test is that degradation changes *availability*, never *answers*.
"""

from __future__ import annotations

import json
import socket
import time
import urllib.request

import numpy as np
import pytest

from repro.graph.digraph import Digraph
from repro.graph.storage import save_graph
from repro.obs.metrics import MetricsRegistry
from repro.service import (
    SCCServer,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    wait_until_ready,
)
from repro.service.protocol import encode_message, decode_line


def _graph() -> Digraph:
    # SCCs: {0,1,2} -> {3,4,5} -> {6}; nothing reaches back up.
    edges = np.asarray(
        [[0, 1], [1, 2], [2, 0], [2, 3], [3, 4], [4, 5], [5, 3], [5, 6]],
        dtype=np.int64,
    )
    return Digraph(7, edges)


@pytest.fixture
def served(tmp_path):
    """A running daemon over the known graph; yields (server, port)."""
    servers = []

    def boot(**overrides) -> SCCServer:
        path = str(tmp_path / "graph.rgr")
        if not (tmp_path / "graph.rgr").exists():
            save_graph(_graph(), path)
        overrides.setdefault("query_workers", 2)
        config = ServiceConfig(graph_path=path, **overrides)
        server = SCCServer(config, registry=MetricsRegistry())
        server.start()
        servers.append(server)
        return server

    yield boot
    for server in servers:
        server.stop()


class _RawConn:
    """A connection that can pipeline frames without waiting for replies."""

    def __init__(self, port: int) -> None:
        self.sock = socket.create_connection(("127.0.0.1", port), timeout=10)
        self.stream = self.sock.makefile("rb")

    def send(self, **message) -> None:
        self.sock.sendall(encode_message(message))

    def recv(self) -> dict:
        line = self.stream.readline()
        assert line, "server closed the connection"
        return decode_line(line)

    def close(self) -> None:
        self.sock.close()


class TestServing:
    def test_answers_match_ground_truth(self, served):
        server = served()
        wait_until_ready("127.0.0.1", server.port)
        with ServiceClient("127.0.0.1", server.port) as client:
            assert client.reach(0, 6) and not client.reach(6, 0)
            assert client.reach(1, 4) and not client.reach(4, 1)
            top = client.scc(0)
            assert top["size"] == 3 and top["layer"] == 0
            assert client.toposort(6)["layer"] == 2
            members = client.members(top["scc"])
            assert sorted(members["members"]) == [0, 1, 2]
            health = client.health()
            assert health["state"] == "serving" and not health["stale"]
            assert health["num_sccs"] == 3

    def test_out_of_range_and_bad_requests_are_typed(self, served):
        server = served()
        wait_until_ready("127.0.0.1", server.port)
        with ServiceClient("127.0.0.1", server.port) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.reach(0, 9999)
            assert excinfo.value.code == "out_of_range"
        raw = _RawConn(server.port)
        try:
            raw.send(id=1, op="explode")
            response = raw.recv()
            assert response["error"]["code"] == "bad_request"
        finally:
            raw.close()

    def test_unavailable_while_building(self, served):
        # slow@ tokens stretch the initial build so BUILDING is observable.
        server = served(fault_plan="seed=1;slow@0:400;slow@1:400")
        with ServiceClient("127.0.0.1", server.port) as client:
            health = client.health()
            if health["state"] == "building":  # not already done
                with pytest.raises(ServiceError) as excinfo:
                    client.reach(0, 1)
                assert excinfo.value.code == "unavailable"
        wait_until_ready("127.0.0.1", server.port)

    def test_config_rejects_inverted_watermarks(self, tmp_path):
        with pytest.raises(ValueError, match="high_water"):
            SCCServer(
                ServiceConfig(
                    graph_path=str(tmp_path / "g.rgr"),
                    queue_max=4,
                    high_water=5,
                )
            )


class TestDeadlines:
    def test_deadline_exceeded_during_execution(self, served):
        server = served()
        wait_until_ready("127.0.0.1", server.port)
        raw = _RawConn(server.port)
        try:
            started = time.monotonic()
            raw.send(id=1, op="sleep", ms=5000, deadline_ms=100)
            response = raw.recv()
            elapsed = time.monotonic() - started
            assert response["error"]["code"] == "deadline_exceeded"
            assert elapsed < 3.0  # cancelled, not slept to completion
        finally:
            raw.close()

    def test_deadline_expires_while_queued(self, served):
        server = served(query_workers=1)
        wait_until_ready("127.0.0.1", server.port)
        busy, queued = _RawConn(server.port), _RawConn(server.port)
        try:
            busy.send(id=1, op="sleep", ms=600, deadline_ms=5000)
            time.sleep(0.15)  # the only worker is now asleep
            queued.send(id=2, op="sleep", ms=1, deadline_ms=100)
            response = queued.recv()
            assert response["error"]["code"] == "deadline_exceeded"
            assert "queued" in response["error"]["message"]
            assert busy.recv()["ok"]
        finally:
            busy.close()
            queued.close()


class TestShedding:
    def test_sheds_past_high_water(self, served):
        server = served(query_workers=1, queue_max=4, high_water=1)
        wait_until_ready("127.0.0.1", server.port)
        busy, filler, refused = (
            _RawConn(server.port),
            _RawConn(server.port),
            _RawConn(server.port),
        )
        try:
            busy.send(id=1, op="sleep", ms=600, deadline_ms=5000)
            time.sleep(0.15)  # worker busy, queue empty
            filler.send(id=2, op="sleep", ms=1, deadline_ms=5000)
            time.sleep(0.05)  # queue depth now at high water
            refused.send(id=3, op="reach", u=0, v=1)
            response = refused.recv()
            assert response["error"]["code"] == "shed"
            assert busy.recv()["ok"] and filler.recv()["ok"]
        finally:
            for conn in (busy, filler, refused):
                conn.close()
        with ServiceClient("127.0.0.1", server.port) as client:
            assert client.stats()["shed_total"] >= 1


class TestIngestAndRebuild:
    def test_ingest_merges_swaps_and_clears_staleness(self, served):
        server = served()
        wait_until_ready("127.0.0.1", server.port)
        with ServiceClient("127.0.0.1", server.port) as client:
            assert not client.reach(6, 0)
            result = client.ingest([(6, 0)])
            assert result["accepted"] == 1
            assert result["rebuild"]["scheduled"]
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                health = client.health()
                if health["state"] == "serving" and health["generation"] == 1:
                    break
                time.sleep(0.05)
            assert health["generation"] == 1 and not health["stale"]
            assert health["pending_edges"] == 0
            assert health["num_sccs"] == 1  # 6->0 closes one giant SCC
            assert client.reach(6, 0)

    def test_stale_answers_during_rebuild_are_old_but_right(self, served):
        server = served()
        wait_until_ready("127.0.0.1", server.port)
        original = server._build_generation

        def slowed(path, generation):
            time.sleep(0.5)
            return original(path, generation)

        server._build_generation = slowed
        with ServiceClient("127.0.0.1", server.port) as client:
            client.ingest([(6, 0)])
            health = client.health()
            assert health["state"] == "degraded_stale"
            response = client.request("reach", u=6, v=0)
            assert response["ok"] and response["stale"] is True
            # The stale answer is the *old* graph's truth, never a guess.
            assert response["result"]["reachable"] is False
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if client.health()["state"] == "serving":
                    break
                time.sleep(0.05)
            fresh = client.request("reach", u=6, v=0)
            assert fresh["result"]["reachable"] is True
            assert fresh["stale"] is False

    def test_ingest_rejects_out_of_range_nodes(self, served):
        server = served()
        wait_until_ready("127.0.0.1", server.port)
        with ServiceClient("127.0.0.1", server.port) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.ingest([(0, 7)])
            assert excinfo.value.code == "out_of_range"
            assert client.health()["pending_edges"] == 0

    def test_admission_rejection_is_typed_and_keeps_edges(self, served):
        server = served(admission_window_blocks=1)
        wait_until_ready("127.0.0.1", server.port)
        with ServiceClient("127.0.0.1", server.port) as client:
            result = client.ingest([(6, 0)])
            assert result["rebuild"]["scheduled"] is False
            assert result["rebuild"]["error"] == "admission_rejected"
            # The edges are durably buffered even when the rebuild is not.
            assert client.health()["pending_edges"] == 1
            with pytest.raises(ServiceError) as excinfo:
                client.rebuild()
            assert excinfo.value.code == "admission_rejected"
            assert "retry_after_s" in str(excinfo.value)
            assert client.stats()["admission"]["rejected_total"] >= 2


class TestReadOnly:
    def test_failed_rebuild_degrades_to_read_only_then_recovers(self, served):
        server = served(auto_rebuild=False)
        wait_until_ready("127.0.0.1", server.port)
        with ServiceClient("127.0.0.1", server.port) as client:
            client.ingest([(6, 0)])
            server.config.rebuild_time_limit = 1e-9  # doom the next build
            client.rebuild()
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                health = client.health()
                if health["state"] == "read_only":
                    break
                time.sleep(0.05)
            assert health["state"] == "read_only"
            assert "failed" in (health["last_error"] or "")
            assert health["stale"] is True
            # Still answering — from the last good snapshot.
            assert client.reach(0, 6) and not client.reach(6, 0)
            with pytest.raises(ServiceError) as excinfo:
                client.ingest([(1, 0)])
            assert excinfo.value.code == "read_only"
            # Recovery: a successful rebuild releases the ratchet.
            server.config.rebuild_time_limit = None
            client.rebuild()
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                health = client.health()
                if health["state"] == "serving":
                    break
                time.sleep(0.05)
            assert health["state"] == "serving"
            assert client.reach(6, 0)  # the buffered edge made it in
            assert client.ingest([])["accepted"] == 0


class TestRestart:
    def test_restart_fast_path_preserves_fingerprint(self, served):
        first = served()
        before = wait_until_ready("127.0.0.1", first.port)
        first.stop()
        second = served()
        after = wait_until_ready("127.0.0.1", second.port)
        assert after["fingerprint"] == before["fingerprint"]
        assert after["generation"] == before["generation"]
        assert after["state"] == "serving"

    def test_restart_resumes_interrupted_rebuild(self, served):
        first = served(auto_rebuild=False)
        wait_until_ready("127.0.0.1", first.port)
        with ServiceClient("127.0.0.1", first.port) as client:
            client.ingest([(6, 0)])
            first.config.rebuild_time_limit = 1e-9
            client.rebuild()
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if client.health()["state"] == "read_only":
                    break
                time.sleep(0.05)
        first.stop()
        # The manifest still records the in-flight generation; a fresh
        # process serves stale immediately and resumes the build.
        second = served(auto_rebuild=False)
        health = wait_until_ready("127.0.0.1", second.port)
        deadline = time.monotonic() + 30
        with ServiceClient("127.0.0.1", second.port) as client:
            while time.monotonic() < deadline:
                health = client.health()
                if health["state"] == "serving" and health["generation"] == 1:
                    break
                time.sleep(0.05)
            assert health["generation"] == 1
            assert client.reach(6, 0)


class TestObservability:
    def test_health_and_readiness_endpoints(self, served):
        from repro.obs.sampler import PrometheusEndpoint

        server = served()
        wait_until_ready("127.0.0.1", server.port)
        with PrometheusEndpoint(
            server.registry, port=0, health=server.health_payload
        ) as endpoint:
            base = f"http://{endpoint.host}:{endpoint.port}"
            healthz = json.loads(urllib.request.urlopen(base + "/healthz").read())
            assert healthz["state"] == "serving" and healthz["ready"]
            assert urllib.request.urlopen(base + "/readyz").status == 200
            text = urllib.request.urlopen(base + "/metrics").read().decode()
            for series in (
                "repro_service_state",
                "repro_service_queue_depth",
                "repro_service_stale",
                "repro_service_requests_total",
            ):
                assert series in text
