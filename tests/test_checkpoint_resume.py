"""Checkpoint/resume: the crash matrix and the session protocol.

The headline guarantee: crash a run at *every* scan boundary (via the
fault plan's ``crash@scan:K``), resume it from the checkpoint, and the
resumed run must produce a byte-identical SCC partition *and* identical
total counted I/O to an uninterrupted run — the resume restarts the
logical run, it does not re-pay or skip scans.  The matrix is exercised
for 1P-SCC and 2P-SCC per the issue; the remaining algorithms share the
same boundary plumbing and are covered by one smoke crash each.

Also covered: the :class:`~repro.io.checkpoint.CheckpointSession`
persistence protocol (save/load/complete, retire-after-durable), and
the fingerprint validation that refuses to resume against the wrong
graph, algorithm or layout version.
"""

from __future__ import annotations

import hashlib
import os

import numpy as np
import pytest

from repro.core.base import canonicalize_labels
from repro.core.dfs_scc import DFSSCC
from repro.core.em_scc import EMSCC
from repro.core.one_phase import OnePhaseSCC
from repro.core.one_phase_batch import OnePhaseBatchSCC
from repro.core.two_phase import TwoPhaseSCC
from repro.exceptions import CheckpointError
from repro.graph.digraph import Digraph
from repro.graph.diskgraph import DiskGraph
from repro.io.checkpoint import (
    CHECKPOINT_NAME,
    CheckpointSession,
    graph_fingerprint,
)
from repro.io.counter import IOStats
from repro.io.faults import SimulatedCrash

from tests.conftest import SMALL_BLOCK


def _random_graph(n: int = 60, avg_degree: float = 3.0, seed: int = 7) -> Digraph:
    rng = np.random.default_rng(seed)
    m = int(n * avg_degree)
    edges = rng.integers(0, n, size=(m, 2), dtype=np.int64)
    return Digraph(n, edges)


def _partition_sha(labels: np.ndarray) -> str:
    canonical, _ = canonicalize_labels(labels)
    return hashlib.sha256(
        np.ascontiguousarray(canonical, dtype="<i8").tobytes()
    ).hexdigest()


@pytest.fixture
def disk(tmp_path) -> DiskGraph:
    graph = DiskGraph.from_digraph(
        _random_graph(), str(tmp_path / "g.bin"), block_size=SMALL_BLOCK
    )
    yield graph
    graph.close()


def _crash_matrix(algo_factory, disk, tmp_path) -> None:
    """Crash at every boundary; resume must match the uninterrupted run."""
    plain = algo_factory().run(disk)
    golden_sha = _partition_sha(plain.labels)
    golden_io = plain.stats.io.to_dict()

    ckpt_dir = str(tmp_path / "baseline-ckpt")
    baseline = algo_factory().run(disk, checkpoint_dir=ckpt_dir)
    boundaries = int(baseline.stats.extras["checkpoint_boundaries"])
    assert boundaries >= 1
    assert _partition_sha(baseline.labels) == golden_sha
    # Checkpoint writes are durability metadata, never counted I/O.
    assert baseline.stats.io.to_dict() == golden_io
    # A finished run leaves nothing to resume.
    assert not os.path.exists(os.path.join(ckpt_dir, CHECKPOINT_NAME))

    for k in range(boundaries):
        crash_dir = str(tmp_path / f"crash-{k}")
        with pytest.raises(SimulatedCrash):
            algo_factory().run(
                disk,
                fault_plan=f"crash@scan:{k}",
                checkpoint_dir=crash_dir,
            )
        assert os.path.exists(os.path.join(crash_dir, CHECKPOINT_NAME))
        resumed = algo_factory().run(disk, checkpoint_dir=crash_dir, resume=True)
        assert resumed.stats.extras["resumed_from_boundary"] == k
        assert _partition_sha(resumed.labels) == golden_sha, f"boundary {k}"
        assert resumed.stats.io.to_dict() == golden_io, f"boundary {k}"
        assert not os.path.exists(os.path.join(crash_dir, CHECKPOINT_NAME))


class TestCrashMatrix:
    def test_one_phase_full_matrix(self, disk, tmp_path):
        _crash_matrix(OnePhaseSCC, disk, tmp_path)

    def test_two_phase_full_matrix(self, disk, tmp_path):
        _crash_matrix(TwoPhaseSCC, disk, tmp_path)

    @pytest.mark.parametrize(
        "algo_factory", [OnePhaseBatchSCC, EMSCC, DFSSCC],
        ids=["1PB-SCC", "EM-SCC", "DFS-SCC"],
    )
    def test_other_algorithms_crash_and_resume(
        self, algo_factory, disk, tmp_path
    ):
        plain = algo_factory().run(disk)
        crash_dir = str(tmp_path / "ckpt")
        with pytest.raises(SimulatedCrash):
            algo_factory().run(
                disk, fault_plan="crash@scan:0", checkpoint_dir=crash_dir
            )
        resumed = algo_factory().run(disk, checkpoint_dir=crash_dir, resume=True)
        assert _partition_sha(resumed.labels) == _partition_sha(plain.labels)
        assert resumed.stats.io.to_dict() == plain.stats.io.to_dict()


class TestResumeEdgeCases:
    def test_resume_without_checkpoint_runs_fresh(self, disk, tmp_path):
        result = OnePhaseSCC().run(
            disk, checkpoint_dir=str(tmp_path / "empty"), resume=True
        )
        assert "resumed_from_boundary" not in result.stats.extras
        plain = OnePhaseSCC().run(disk)
        assert _partition_sha(result.labels) == _partition_sha(plain.labels)

    def test_crash_without_checkpoint_dir_still_crashes(self, disk):
        with pytest.raises(SimulatedCrash):
            OnePhaseSCC().run(disk, fault_plan="crash@scan:0")

    def test_resume_on_wrong_graph_refuses(self, disk, tmp_path):
        crash_dir = str(tmp_path / "ckpt")
        with pytest.raises(SimulatedCrash):
            OnePhaseSCC().run(
                disk, fault_plan="crash@scan:0", checkpoint_dir=crash_dir
            )
        other = DiskGraph.from_digraph(
            _random_graph(n=40, seed=9),
            str(tmp_path / "other.bin"),
            block_size=SMALL_BLOCK,
        )
        try:
            with pytest.raises(CheckpointError, match="fingerprint"):
                OnePhaseSCC().run(other, checkpoint_dir=crash_dir, resume=True)
        finally:
            other.close()

    def test_resume_with_wrong_algorithm_refuses(self, disk, tmp_path):
        crash_dir = str(tmp_path / "ckpt")
        with pytest.raises(SimulatedCrash):
            OnePhaseSCC().run(
                disk, fault_plan="crash@scan:0", checkpoint_dir=crash_dir
            )
        with pytest.raises(CheckpointError, match="1P-SCC"):
            TwoPhaseSCC().run(disk, checkpoint_dir=crash_dir, resume=True)


class TestCheckpointSession:
    def _session(self, tmp_path, algorithm="1P-SCC") -> CheckpointSession:
        return CheckpointSession.for_graph(
            str(tmp_path / "ckpt"), algorithm,
            num_nodes=10, num_edges=20, block_size=SMALL_BLOCK, path="g.bin",
        )

    def test_save_load_roundtrip(self, tmp_path):
        session = self._session(tmp_path)
        session.bind_io(lambda: IOStats(seq_reads=5, bytes_read=320))
        arrays = {"parent": np.arange(10, dtype=np.int64)}
        assert session.save(arrays, {"iteration": 3}) == 0
        assert session.save(arrays, {"iteration": 4}) == 1

        loaded = self._session(tmp_path).load()
        assert loaded is not None
        assert loaded.boundary == 1
        assert loaded.meta["iteration"] == 4
        assert loaded.io.seq_reads == 5
        assert np.array_equal(loaded.arrays["parent"], np.arange(10))

    def test_load_missing_returns_none(self, tmp_path):
        assert self._session(tmp_path).load() is None

    def test_complete_removes_checkpoint(self, tmp_path):
        session = self._session(tmp_path)
        session.save({"a": np.zeros(3)}, {})
        session.complete()
        assert self._session(tmp_path).load() is None

    def test_retire_deletes_only_after_next_durable_save(self, tmp_path):
        session = self._session(tmp_path)
        scratch = tmp_path / "scratch.bin"
        scratch.write_bytes(b"old working file")
        session.retire(str(scratch))
        assert scratch.exists()  # the last checkpoint may reference it
        session.save({"a": np.zeros(3)}, {"current_path": "newer.bin"})
        assert not scratch.exists()

    def test_retire_keeps_the_still_referenced_file(self, tmp_path):
        session = self._session(tmp_path)
        scratch = tmp_path / "scratch.bin"
        scratch.write_bytes(b"referenced by the checkpoint being saved")
        session.retire(str(scratch))
        session.save({"a": np.zeros(3)}, {"current_path": str(scratch)})
        assert scratch.exists()
        session.complete()
        assert not scratch.exists()

    def test_fingerprint_binds_graph_identity(self):
        base = graph_fingerprint("1P-SCC", 10, 20, 64, "g.bin")
        assert base == graph_fingerprint("1P-SCC", 10, 20, 64, "dir/g.bin")
        assert base != graph_fingerprint("1P-SCC", 11, 20, 64, "g.bin")
        assert base != graph_fingerprint("1P-SCC", 10, 21, 64, "g.bin")
        assert base != graph_fingerprint("1P-SCC", 10, 20, 128, "g.bin")
        assert base != graph_fingerprint("2P-SCC", 10, 20, 64, "g.bin")
