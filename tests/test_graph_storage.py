"""Tests for persistent graph storage."""

import numpy as np
import pytest

from repro.exceptions import GraphFormatError
from repro.graph.digraph import Digraph
from repro.graph.storage import (
    load_graph,
    open_disk_graph,
    read_metadata,
    save_graph,
)


def sample_graph(seed=0, n=25, m=80):
    rng = np.random.default_rng(seed)
    return Digraph(n, rng.integers(0, n, size=(m, 2)))


class TestRoundtrip:
    def test_save_load(self, tmp_path):
        g = sample_graph()
        path = str(tmp_path / "g.rgr")
        save_graph(g, path)
        assert load_graph(path) == g

    def test_isolated_nodes_preserved(self, tmp_path):
        g = Digraph(50, np.array([[0, 1]]))
        path = str(tmp_path / "iso.rgr")
        save_graph(g, path)
        assert load_graph(path).num_nodes == 50

    def test_metadata_attributes(self, tmp_path):
        path = str(tmp_path / "a.rgr")
        save_graph(sample_graph(), path, attributes={"kind": "demo"})
        meta = read_metadata(path)
        assert meta["attributes"]["kind"] == "demo"
        assert meta["num_nodes"] == 25

    def test_open_disk_graph_scans_without_loading(self, tmp_path):
        g = sample_graph(m=200)
        path = str(tmp_path / "d.rgr")
        save_graph(g, path)
        disk = open_disk_graph(path)
        assert disk.num_nodes == g.num_nodes
        assert sum(len(b) for b in disk.scan_edges()) == g.num_edges
        disk.close()


class TestFailureInjection:
    def test_missing_sidecar(self, tmp_path):
        path = str(tmp_path / "orphan.rgr")
        open(path, "wb").close()
        with pytest.raises(GraphFormatError):
            read_metadata(path)

    def test_wrong_format_marker(self, tmp_path):
        path = str(tmp_path / "bad.rgr")
        save_graph(sample_graph(), path)
        meta_path = path + ".meta"
        content = open(meta_path).read().replace("repro-graph-v1", "other")
        open(meta_path, "w").write(content)
        with pytest.raises(GraphFormatError):
            read_metadata(path)

    def test_truncated_edge_file_detected(self, tmp_path):
        path = str(tmp_path / "trunc.rgr")
        save_graph(sample_graph(m=100), path)
        data = open(path, "rb").read()
        open(path, "wb").write(data[: len(data) // 2])
        with pytest.raises(GraphFormatError):
            open_disk_graph(path)

    def test_corrupt_json_raises(self, tmp_path):
        path = str(tmp_path / "cj.rgr")
        save_graph(sample_graph(), path)
        open(path + ".meta", "w").write("{not json")
        with pytest.raises(Exception):
            read_metadata(path)
