"""Tests specific to 1P-SCC: early acceptance, early rejection, reduction."""

import numpy as np
import pytest

from repro.core.one_phase import OnePhaseSCC
from repro.core.validate import partitions_equal
from repro.graph.digraph import Digraph
from repro.graph.diskgraph import DiskGraph
from repro.inmemory.tarjan import tarjan_scc
from repro.workloads.synthetic import synthetic_graph

from tests.conftest import SMALL_BLOCK


def disk(tmp_path, graph, name="g.bin"):
    return DiskGraph.from_digraph(
        graph, str(tmp_path / name), block_size=SMALL_BLOCK
    )


class TestParameters:
    def test_invalid_tau_rejected(self):
        with pytest.raises(ValueError):
            OnePhaseSCC(tau_fraction=0.0)

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            OnePhaseSCC(rejection_period=0)


class TestOptimizationsPreserveCorrectness:
    """All four on/off combinations must give identical partitions."""

    @pytest.mark.parametrize("acceptance", [True, False])
    @pytest.mark.parametrize("rejection", [True, False])
    def test_ablation_grid(self, tmp_path, acceptance, rejection):
        rng = np.random.default_rng(11)
        g = Digraph(100, rng.integers(0, 100, size=(350, 2)))
        truth, _ = tarjan_scc(g)
        algo = OnePhaseSCC(
            enable_acceptance=acceptance, enable_rejection=rejection
        )
        dg = disk(tmp_path, g, name=f"g-{acceptance}-{rejection}.bin")
        result = algo.run(dg)
        assert partitions_equal(truth, result.labels)
        dg.unlink()

    def test_aggressive_rejection_period(self, tmp_path):
        """Rejecting every iteration is the most dangerous setting."""
        for seed in range(5):
            rng = np.random.default_rng(seed)
            n = int(rng.integers(20, 120))
            g = Digraph(n, rng.integers(0, n, size=(3 * n, 2)))
            truth, _ = tarjan_scc(g)
            algo = OnePhaseSCC(rejection_period=1)
            dg = disk(tmp_path, g, name=f"r{seed}.bin")
            result = algo.run(dg)
            assert partitions_equal(truth, result.labels)
            dg.unlink()

    def test_tiny_tau_forces_many_rewrites(self, tmp_path):
        planted = synthetic_graph(
            200, avg_degree=4, massive_sccs=[50], small_sccs=[5] * 4, seed=3
        )
        algo = OnePhaseSCC(tau_fraction=1e-9)
        dg = disk(tmp_path, planted.graph)
        result = algo.run(dg)
        assert partitions_equal(planted.labels, result.labels)
        dg.unlink()


class TestGraphReduction:
    def test_edges_shrink_when_acceptance_fires(self, tmp_path):
        planted = synthetic_graph(
            300, avg_degree=5, massive_sccs=[150], seed=0, intra_fraction=0.7
        )
        dg = disk(tmp_path, planted.graph)
        result = OnePhaseSCC(tau_fraction=0.01).run(dg)
        live_edges = [it.live_edges for it in result.stats.per_iteration]
        assert live_edges[-1] < planted.graph.num_edges
        dg.unlink()

    def test_rejection_reported_in_extras(self, tmp_path):
        # A long chain rejects aggressively: no cycles anywhere.
        n = 50
        g = Digraph(n, np.array([[i, i + 1] for i in range(n - 1)]))
        dg = disk(tmp_path, g)
        result = OnePhaseSCC(rejection_period=1).run(dg)
        assert result.num_sccs == n
        assert result.stats.extras["rejected_nodes"] > 0
        dg.unlink()

    def test_input_file_never_modified(self, tmp_path):
        planted = synthetic_graph(150, avg_degree=5, massive_sccs=[70], seed=2)
        dg = disk(tmp_path, planted.graph)
        before = dg.edge_file.read_all().copy()
        OnePhaseSCC(tau_fraction=1e-9, rejection_period=1).run(dg)
        assert np.array_equal(dg.edge_file.read_all(), before)
        dg.unlink()

    def test_scratch_files_cleaned_up(self, tmp_path):
        planted = synthetic_graph(150, avg_degree=5, massive_sccs=[70], seed=2)
        dg = disk(tmp_path, planted.graph)
        OnePhaseSCC(tau_fraction=1e-9).run(dg)
        assert [p.name for p in tmp_path.iterdir()] == ["g.bin"]
        dg.unlink()
