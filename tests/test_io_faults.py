"""The deterministic fault-injection harness (repro.io.faults).

Covers the plan language (parse / serialize / env), the retry policy's
seeded backoff, the injector's ordinal cursors, and the behaviour at
the block-device choke-point: transient read errors are retried and
tallied as ``io_retries`` (never as block reads), exhausted retries
escape like a persistent EIO, and torn writes persist only their
planned prefix before raising.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.io.counter import IOCounter
from repro.io.edgefile import EdgeFile
from repro.io.faults import (
    FAULT_PLAN_ENV,
    FaultInjector,
    FaultPlan,
    RetryPolicy,
    SimulatedCrash,
    TornWriteError,
    TransientIOError,
)

from tests.conftest import SMALL_BLOCK


class TestFaultPlanSpec:
    def test_parse_full_spec(self):
        plan = FaultPlan.parse(
            "seed=7;read-error@5;read-error@9x2;tear@3:100;crash@scan:2"
        )
        assert plan.seed == 7
        assert plan.read_errors == {5: 1, 9: 2}
        assert [(t.ordinal, t.offset) for t in plan.tears] == [(3, 100)]
        assert plan.crash_boundaries == [2]

    def test_roundtrip_through_to_spec(self):
        spec = "seed=3;read-error@1x2;read-error@4;tear@0:16;crash@scan:1"
        plan = FaultPlan.parse(spec)
        assert FaultPlan.parse(plan.to_spec()).to_spec() == plan.to_spec()
        assert plan.to_spec() == spec

    def test_repeated_read_tokens_accumulate(self):
        plan = FaultPlan.parse("read-error@2;read-error@2x2")
        assert plan.read_errors == {2: 3}

    def test_whitespace_and_empty_tokens_tolerated(self):
        plan = FaultPlan.parse(" read-error@1 ; ; crash@scan:0 ")
        assert plan.read_errors == {1: 1}
        assert plan.crash_boundaries == [0]

    def test_unknown_token_rejected(self):
        with pytest.raises(ValueError, match="unrecognised"):
            FaultPlan.parse("write-error@3")

    def test_from_env(self):
        assert FaultPlan.from_env({}) is None
        assert FaultPlan.from_env({FAULT_PLAN_ENV: "  "}) is None
        plan = FaultPlan.from_env({FAULT_PLAN_ENV: "seed=1;read-error@0"})
        assert plan is not None and plan.read_errors == {0: 1}

    def test_planned_retries_caps_at_policy_budget(self):
        plan = FaultPlan.parse("read-error@0x5;read-error@1")
        assert plan.planned_retries(RetryPolicy(max_retries=3)) == 4
        assert plan.planned_retries(RetryPolicy(max_retries=0)) == 0
        # Default policy: three retries max per faulting read.
        assert plan.planned_retries() == 4


class TestRetryPolicy:
    def test_backoff_is_seeded_and_bounded(self):
        a = RetryPolicy(max_retries=3, base_delay_s=0.01, seed=42)
        b = RetryPolicy(max_retries=3, base_delay_s=0.01, seed=42)
        delays_a = [a.backoff_s(i) for i in range(3)]
        delays_b = [b.backoff_s(i) for i in range(3)]
        assert delays_a == delays_b
        assert all(0 <= d <= a.max_delay_s for d in delays_a)

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)


class TestInjectorCursors:
    def test_read_ordinals_are_monotone(self):
        injector = FaultInjector(FaultPlan())
        assert [injector.next_read_ordinal() for _ in range(3)] == [0, 1, 2]
        assert [injector.next_write_ordinal() for _ in range(2)] == [0, 1]

    def test_check_read_fires_planned_times_then_clears(self):
        injector = FaultInjector(FaultPlan.parse("read-error@1x2"))
        injector.check_read(0, "f")  # unplanned ordinal: silent
        for _ in range(2):
            with pytest.raises(TransientIOError):
                injector.check_read(1, "f")
        injector.check_read(1, "f")  # plan exhausted
        assert injector.faults_fired == 2

    def test_maybe_crash_fires_only_planned_boundary(self):
        injector = FaultInjector(FaultPlan.parse("crash@scan:1"))
        injector.maybe_crash()  # boundary 0
        with pytest.raises(SimulatedCrash) as exc:
            injector.maybe_crash()  # boundary 1
        assert exc.value.boundary == 1
        injector.maybe_crash()  # boundary 2


def _edges(m: int) -> np.ndarray:
    return np.column_stack(
        (np.arange(m, dtype=np.int64), np.arange(m, dtype=np.int64) + 1)
    )


class TestDeviceIntegration:
    def test_transient_read_errors_cost_retries_not_reads(self, tmp_path):
        edges = _edges(64)
        clean_counter = IOCounter()
        clean = EdgeFile.from_array(
            str(tmp_path / "clean.bin"), edges,
            counter=clean_counter, block_size=SMALL_BLOCK,
        )
        for _ in clean.scan():
            pass

        plan = FaultPlan.parse("seed=1;read-error@0x2;read-error@3")
        faulted_counter = IOCounter()
        faulted_counter.fault_injector = FaultInjector(plan)
        faulted = EdgeFile.from_array(
            str(tmp_path / "faulted.bin"), edges,
            counter=faulted_counter, block_size=SMALL_BLOCK,
        )
        batches = [batch.copy() for batch in faulted.scan()]

        assert np.array_equal(np.concatenate(batches), edges)
        clean_io = clean_counter.stats
        faulted_io = faulted_counter.stats
        assert faulted_io.seq_reads == clean_io.seq_reads
        assert faulted_io.rand_reads == clean_io.rand_reads
        assert faulted_io.bytes_read == clean_io.bytes_read
        assert faulted_io.io_retries == plan.planned_retries()
        assert faulted_io.faults_injected == 3

    def test_exhausted_retries_escape(self, tmp_path):
        counter = IOCounter()
        counter.fault_injector = FaultInjector(
            FaultPlan.parse("read-error@0x9"),
            policy=RetryPolicy(max_retries=2),
        )
        edge_file = EdgeFile.from_array(
            str(tmp_path / "edges.bin"), _edges(16),
            counter=counter, block_size=SMALL_BLOCK,
        )
        with pytest.raises(TransientIOError):
            for _ in edge_file.scan():
                pass
        # Budget-bounded: two retries were attempted, three faults fired.
        assert counter.stats.io_retries == 2
        assert counter.stats.faults_injected == 3

    def test_torn_write_persists_prefix_and_raises(self, tmp_path):
        counter = IOCounter()
        counter.fault_injector = FaultInjector(FaultPlan.parse("tear@0:8"))
        edge_file = EdgeFile.create(
            str(tmp_path / "torn.bin"), counter=counter, block_size=SMALL_BLOCK
        )
        with pytest.raises(TornWriteError):
            edge_file.append(_edges(SMALL_BLOCK // 8))  # exactly one block
        edge_file.device.close()
        assert (tmp_path / "torn.bin").stat().st_size == 8
        # The torn attempt is a fault, never a charged block write.
        assert counter.stats.seq_writes + counter.stats.rand_writes == 0
        assert counter.stats.faults_injected == 1


class TestSlowReads:
    """The ``slow@N:MS`` latency token: delay without error."""

    def test_parse_and_roundtrip(self):
        spec = "seed=2;read-error@1;slow@0:50;slow@4:10;crash@scan:1"
        plan = FaultPlan.parse(spec)
        assert plan.slow_reads == {0: 50, 4: 10}
        assert plan.read_errors == {1: 1}
        assert FaultPlan.parse(plan.to_spec()).to_spec() == plan.to_spec()
        assert plan.to_spec() == spec

    def test_repeated_slow_tokens_accumulate(self):
        plan = FaultPlan.parse("slow@3:20;slow@3:30")
        assert plan.slow_reads == {3: 50}

    def test_slow_reads_never_retry(self):
        assert FaultPlan.parse("slow@0:100;slow@1:100").planned_retries() == 0

    def test_take_slow_is_consume_once(self):
        injector = FaultInjector(FaultPlan.parse("slow@2:250"))
        assert injector.take_slow(0) is None
        assert injector.take_slow(2) == pytest.approx(0.25)
        assert injector.take_slow(2) is None
        assert injector.faults_fired == 1

    def test_device_read_is_delayed_but_io_counts_unchanged(self, tmp_path):
        edges = _edges(64)
        clean_counter = IOCounter()
        clean = EdgeFile.from_array(
            str(tmp_path / "clean.bin"), edges,
            counter=clean_counter, block_size=SMALL_BLOCK,
        )
        for _ in clean.scan():
            pass

        plan = FaultPlan.parse("slow@0:40")
        slow_counter = IOCounter()
        slow_counter.fault_injector = FaultInjector(plan)
        slowed = EdgeFile.from_array(
            str(tmp_path / "slow.bin"), edges,
            counter=slow_counter, block_size=SMALL_BLOCK,
        )
        import time as _time

        start = _time.monotonic()
        batches = [batch.copy() for batch in slowed.scan()]
        elapsed = _time.monotonic() - start

        assert np.array_equal(np.concatenate(batches), edges)
        assert elapsed >= 0.04
        clean_io = clean_counter.stats
        slow_io = slow_counter.stats
        assert slow_io.seq_reads == clean_io.seq_reads
        assert slow_io.rand_reads == clean_io.rand_reads
        assert slow_io.bytes_read == clean_io.bytes_read
        assert slow_io.io_retries == 0
        assert slow_io.faults_injected == 1

    def test_slow_composes_with_read_error_on_same_ordinal(self, tmp_path):
        plan = FaultPlan.parse("seed=1;slow@0:10;read-error@0")
        counter = IOCounter()
        counter.fault_injector = FaultInjector(plan)
        edge_file = EdgeFile.from_array(
            str(tmp_path / "both.bin"), _edges(64),
            counter=counter, block_size=SMALL_BLOCK,
        )
        batches = [batch.copy() for batch in edge_file.scan()]
        assert np.array_equal(np.concatenate(batches), _edges(64))
        # One delay fired, one transient error fired, one retry charged.
        assert counter.stats.faults_injected == 2
        assert counter.stats.io_retries == 1
