"""Tests for the BR+-Tree: backward links, drank/dlink, classification."""

import numpy as np

from repro.constants import VIRTUAL_ROOT
from repro.spanning.brtree import BRPlusTree


def chain_tree(n):
    tree = BRPlusTree(n)
    for v in range(1, n):
        tree.reparent(v, v - 1)
    return tree


class TestBlinks:
    def test_offer_blink_accepts_first(self):
        tree = chain_tree(4)
        assert tree.offer_blink(3, 1)
        assert tree.blink[3] == 1

    def test_offer_blink_prefers_shallower(self):
        tree = chain_tree(4)
        tree.offer_blink(3, 2)
        assert tree.offer_blink(3, 0)  # depth 1 beats depth 3
        assert tree.blink[3] == 0

    def test_offer_blink_rejects_deeper(self):
        tree = chain_tree(4)
        tree.offer_blink(3, 0)
        assert not tree.offer_blink(3, 2)
        assert tree.blink[3] == 0

    def test_invalidated_blink_dropped_by_update(self):
        tree = BRPlusTree(4)
        tree.reparent(1, 0)
        tree.reparent(2, 1)  # chain 0-1-2, root 3
        tree.offer_blink(2, 0)
        tree.pushdown(3, 1)  # move subtree {1,2} under 3: 0 no longer anc
        tree.update_drank()
        assert tree.blink[2] == VIRTUAL_ROOT


class TestDrank:
    def test_no_blinks_drank_equals_depth(self):
        tree = chain_tree(5)
        tree.update_drank()
        assert np.array_equal(tree.drank, tree.depth)
        assert np.array_equal(tree.dlink, np.arange(5))

    def test_blink_lifts_whole_subtree(self):
        # chain 0-1-2-3 with blink 3 -> 0: drank of 1, 2, 3 becomes 1.
        tree = chain_tree(4)
        tree.offer_blink(3, 0)
        tree.update_drank()
        assert tree.drank.tolist() == [1, 1, 1, 1]
        assert tree.dlink.tolist() == [0, 0, 0, 0]

    def test_jump_chain_closure(self):
        # 0-1-2-3-4; blink 4->2 and blink 2->0: closure gives drank 1 deep.
        tree = chain_tree(5)
        tree.offer_blink(4, 2)
        tree.offer_blink(2, 0)
        tree.update_drank()
        assert tree.drank[4] == 1
        assert tree.dlink[4] == 0

    def test_sibling_subtrees_independent(self):
        tree = BRPlusTree(5)
        tree.reparent(1, 0)
        tree.reparent(2, 0)
        tree.reparent(3, 1)
        tree.reparent(4, 2)
        tree.offer_blink(3, 0)  # only 1's branch gets the lift
        tree.update_drank()
        assert tree.drank[3] == 1
        assert tree.drank[1] == 1
        assert tree.drank[4] == 3  # untouched branch keeps its depth
        assert tree.drank[2] == 2


class TestClassification:
    def test_tree_and_forward_edges(self):
        tree = chain_tree(3)
        tree.update_drank()
        assert tree.classify_edge(0, 1) == "tree-or-forward"
        assert tree.classify_edge(0, 2) == "tree-or-forward"

    def test_backward_edge(self):
        tree = chain_tree(3)
        tree.update_drank()
        assert tree.classify_edge(2, 0) == "backward"

    def test_up_edge_by_depth(self):
        tree = BRPlusTree(4)
        tree.reparent(1, 0)
        tree.reparent(2, 1)  # depth(2) = 3; node 3 at depth 1
        tree.update_drank()
        assert tree.classify_edge(2, 3) == "up"

    def test_down_edge(self):
        tree = BRPlusTree(4)
        tree.reparent(1, 0)
        tree.reparent(2, 1)
        tree.update_drank()
        assert tree.classify_edge(3, 2) == "down"

    def test_refined_up_edge_via_drank(self):
        # Fig. 5's situation: a blink lifts a node's drank, flipping
        # how cross-branch edges classify under Definition 5.1.
        tree = BRPlusTree(5)
        tree.reparent(1, 0)
        tree.reparent(2, 1)   # branch A: 0-1-2 (depths 1, 2, 3)
        tree.reparent(4, 3)   # branch B: 3-4 (depths 1, 2)
        tree.offer_blink(4, 3)  # drank(4) = 1
        tree.update_drank()
        # edge (2, 4): drank(2)=3 >= drank(4)=1, no ancestry -> up-edge.
        assert tree.classify_edge(2, 4) == "up"
        # edge (4, 2): drank(4)=1 < drank(2)=3 -> down (ignorable).
        assert tree.classify_edge(4, 2) == "down"
        # Lifting 2's branch to drank 1 makes both directions up-edges
        # (equal dranks satisfy the >= of Definition 5.1).
        tree.offer_blink(2, 0)
        tree.update_drank()
        assert tree.classify_edge(4, 2) == "up"
        assert tree.classify_edge(2, 4) == "up"
