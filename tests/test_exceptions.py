"""Tests for the exception hierarchy and error messages."""

import pytest

from repro.exceptions import (
    AlgorithmTimeout,
    GraphFormatError,
    MemoryBudgetError,
    NonTermination,
    ReproError,
    ValidationError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc_type",
        [GraphFormatError, MemoryBudgetError, ValidationError],
    )
    def test_all_derive_from_repro_error(self, exc_type):
        assert issubclass(exc_type, ReproError)

    def test_timeout_carries_context(self):
        exc = AlgorithmTimeout("1PB-SCC", 30.0)
        assert isinstance(exc, ReproError)
        assert exc.algorithm == "1PB-SCC"
        assert exc.limit_seconds == 30.0
        assert "1PB-SCC" in str(exc) and "30.0" in str(exc)

    def test_nontermination_carries_context(self):
        exc = NonTermination("EM-SCC", 64)
        assert isinstance(exc, ReproError)
        assert exc.algorithm == "EM-SCC"
        assert exc.iterations == 64
        assert "64" in str(exc)

    def test_single_except_clause_catches_everything(self):
        for exc in (
            GraphFormatError("x"),
            AlgorithmTimeout("a", 1.0),
            NonTermination("a", 1),
            MemoryBudgetError("m"),
            ValidationError("v"),
        ):
            with pytest.raises(ReproError):
                raise exc
