"""Tests for the planted-SCC generator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.validate import partitions_equal
from repro.inmemory.tarjan import tarjan_scc
from repro.workloads.synthetic import planted_scc_graph, synthetic_graph


class TestPlantedStructureIsExact:
    def test_labels_match_tarjan(self):
        planted = planted_scc_graph(200, [30, 10, 5], avg_degree=5, seed=0)
        truth, _ = tarjan_scc(planted.graph)
        assert partitions_equal(truth, planted.labels)

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        sizes=st.lists(st.integers(2, 12), min_size=0, max_size=5),
        degree=st.floats(min_value=1.0, max_value=8.0),
    )
    def test_property_ground_truth_holds(self, seed, sizes, degree):
        num_nodes = sum(sizes) + 50
        planted = planted_scc_graph(
            num_nodes, sizes, avg_degree=degree, seed=seed
        )
        truth, _ = tarjan_scc(planted.graph)
        assert partitions_equal(truth, planted.labels)

    def test_component_sizes_exact(self):
        planted = planted_scc_graph(100, [20, 7], avg_degree=4, seed=1)
        sizes = np.bincount(planted.labels)
        assert sorted(sizes[sizes >= 2].tolist()) == [7, 20]


class TestEdgeBudget:
    def test_edge_count_near_target(self):
        planted = planted_scc_graph(500, [100], avg_degree=6, seed=2)
        target = 6 * 500
        assert abs(planted.graph.num_edges - target) <= 0.1 * target

    def test_intra_fraction_extremes(self):
        dense_core = planted_scc_graph(
            200, [100], avg_degree=5, intra_fraction=1.0, seed=3
        )
        sparse_core = planted_scc_graph(
            200, [100], avg_degree=5, intra_fraction=0.0, seed=3
        )
        truth_a, _ = tarjan_scc(dense_core.graph)
        truth_b, _ = tarjan_scc(sparse_core.graph)
        assert partitions_equal(truth_a, dense_core.labels)
        assert partitions_equal(truth_b, sparse_core.labels)


class TestValidation:
    def test_components_must_fit(self):
        with pytest.raises(ValueError):
            planted_scc_graph(10, [8, 8])

    def test_min_component_size(self):
        with pytest.raises(ValueError):
            planted_scc_graph(10, [1])

    def test_intra_fraction_range(self):
        with pytest.raises(ValueError):
            planted_scc_graph(10, [2], intra_fraction=1.5)


class TestSyntheticWrapper:
    def test_three_classes_combined(self):
        planted = synthetic_graph(
            300,
            avg_degree=4,
            massive_sccs=[50],
            large_sccs=[10, 10],
            small_sccs=[3, 3, 3],
            seed=4,
        )
        sizes = sorted(planted.planted_sizes.tolist())
        assert sizes == [3, 3, 3, 10, 10, 50]
        truth, _ = tarjan_scc(planted.graph)
        assert partitions_equal(truth, planted.labels)

    def test_reproducible_by_seed(self):
        a = synthetic_graph(100, massive_sccs=[20], seed=7)
        b = synthetic_graph(100, massive_sccs=[20], seed=7)
        assert a.graph == b.graph
