"""Protocol framing/validation and the lifecycle state machine."""

from __future__ import annotations

import io
import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.service.protocol import (
    ErrorCode,
    MAX_LINE_BYTES,
    OPS,
    ProtocolError,
    decode_line,
    encode_message,
    error_response,
    ok_response,
    read_frames,
    request_deadline_ms,
    validate_request,
)
from repro.service.state import (
    STATE_CODES,
    IllegalTransition,
    Lifecycle,
    ServiceState,
)


class TestFraming:
    def test_encode_decode_roundtrip(self):
        message = {"id": 7, "op": "reach", "u": 1, "v": 2}
        data = encode_message(message)
        assert data.endswith(b"\n")
        assert decode_line(data) == message

    def test_encode_is_canonical(self):
        # Sorted keys, compact separators: byte-stable across dict order.
        a = encode_message({"b": 1, "a": 2})
        b = encode_message({"a": 2, "b": 1})
        assert a == b

    def test_oversized_message_refused(self):
        with pytest.raises(ProtocolError):
            encode_message({"blob": "x" * MAX_LINE_BYTES})

    def test_decode_rejects_non_object(self):
        with pytest.raises(ProtocolError, match="JSON objects"):
            decode_line(b"[1, 2]\n")

    def test_decode_rejects_garbage(self):
        with pytest.raises(ProtocolError, match="not valid JSON"):
            decode_line(b"{nope\n")

    def test_read_frames_yields_lines_and_stops_at_eof(self):
        stream = io.BytesIO(b'{"op":"health"}\n\n{"op":"stats"}\n')
        frames = list(read_frames(stream))
        assert len(frames) == 2  # the blank line is skipped

    def test_read_frames_caps_line_length(self):
        stream = io.BytesIO(b"x" * (MAX_LINE_BYTES + 10) + b"\n")
        with pytest.raises(ProtocolError, match="line cap"):
            list(read_frames(stream))


class TestValidation:
    def test_every_op_is_known(self):
        assert validate_request({"op": "health"}) == "health"
        with pytest.raises(ProtocolError, match="unknown op"):
            validate_request({"op": "explode"})
        with pytest.raises(ProtocolError, match="unknown op"):
            validate_request({})

    def test_reach_requires_integer_endpoints(self):
        assert validate_request({"op": "reach", "u": 0, "v": 3}) == "reach"
        with pytest.raises(ProtocolError, match="'v'"):
            validate_request({"op": "reach", "u": 0})
        with pytest.raises(ProtocolError, match="'u'"):
            validate_request({"op": "reach", "u": "zero", "v": 1})

    def test_booleans_are_not_node_ids(self):
        # JSON true is a Python bool, an int subclass: must not pass.
        with pytest.raises(ProtocolError, match="'u'"):
            validate_request({"op": "reach", "u": True, "v": 1})

    def test_deadline_must_be_positive_integer(self):
        validate_request({"op": "scc", "node": 0, "deadline_ms": 100})
        for bad in (0, -5, 1.5, True, "fast"):
            with pytest.raises(ProtocolError, match="deadline_ms"):
                validate_request({"op": "scc", "node": 0, "deadline_ms": bad})

    def test_ingest_edge_shape(self):
        validate_request({"op": "ingest", "edges": [[0, 1], [2, 3]]})
        validate_request({"op": "ingest", "edges": []})
        for bad in ("edges", [[0]], [[0, 1, 2]], [["a", 1]], [[True, 1]]):
            with pytest.raises(ProtocolError):
                validate_request({"op": "ingest", "edges": bad})

    def test_members_limit(self):
        validate_request({"op": "members", "scc": 0, "limit": 5})
        with pytest.raises(ProtocolError, match="limit"):
            validate_request({"op": "members", "scc": 0, "limit": 0})

    def test_deadline_clamping(self):
        assert request_deadline_ms({}, 1000, 60000) == 1000
        assert request_deadline_ms({"deadline_ms": 250}, 1000, 60000) == 250
        assert request_deadline_ms({"deadline_ms": 10 ** 9}, 1000, 60000) == 60000


class TestEnvelopes:
    def test_ok_envelope_carries_staleness(self):
        fresh = ok_response(3, {"reachable": True})
        stale = ok_response(3, {"reachable": True}, stale=True)
        assert fresh["ok"] and not fresh["stale"]
        assert stale["stale"] is True
        assert stale["id"] == 3

    def test_error_envelope_has_typed_code(self):
        response = error_response(9, ErrorCode.SHED, "overloaded")
        assert response == {
            "id": 9,
            "ok": False,
            "error": {"code": "shed", "message": "overloaded"},
        }

    def test_unknown_code_degrades_to_internal(self):
        response = error_response(1, "made-up", "boom")
        assert response["error"]["code"] == ErrorCode.INTERNAL

    def test_error_codes_cover_the_degradation_contract(self):
        assert {
            "shed", "deadline_exceeded", "read_only", "admission_rejected",
            "unavailable", "out_of_range",
        } <= ErrorCode.ALL

    def test_ops_cover_the_documented_surface(self):
        assert {
            "reach", "scc", "members", "toposort", "ingest", "rebuild",
            "health", "stats", "shutdown",
        } <= OPS

    def test_envelopes_are_json_serializable(self):
        json.dumps(ok_response(None, {"x": 1}))
        json.dumps(error_response(None, ErrorCode.INTERNAL, "x"))


class TestLifecycle:
    def test_happy_path(self):
        life = Lifecycle()
        assert life.state is ServiceState.BUILDING
        life.transition(ServiceState.SERVING)
        life.transition(ServiceState.DEGRADED_STALE)
        life.transition(ServiceState.SERVING)
        life.transition(ServiceState.STOPPED)

    def test_read_only_is_recoverable(self):
        life = Lifecycle()
        life.transition(ServiceState.SERVING)
        life.transition(ServiceState.READ_ONLY, error="rebuild failed: boom")
        assert life.last_error == "rebuild failed: boom"
        assert life.can_query() and not life.can_ingest()
        life.transition(ServiceState.SERVING)
        assert life.last_error is None
        assert life.can_ingest()

    def test_illegal_transitions_raise(self):
        life = Lifecycle()
        with pytest.raises(IllegalTransition):
            life.transition(ServiceState.DEGRADED_STALE)  # BUILDING -> stale
        life.transition(ServiceState.STOPPED)
        with pytest.raises(IllegalTransition):
            life.transition(ServiceState.SERVING)  # STOPPED is terminal

    def test_self_transition_is_a_no_op_that_may_record_error(self):
        life = Lifecycle()
        life.transition(ServiceState.BUILDING, error="still going")
        assert life.state is ServiceState.BUILDING
        assert life.last_error == "still going"

    def test_state_gauge_is_published(self):
        registry = MetricsRegistry()
        life = Lifecycle(registry)
        life.transition(ServiceState.SERVING)
        snapshot = registry.snapshot()
        assert snapshot["gauges"]["repro_service_state"] == float(
            STATE_CODES[ServiceState.SERVING]
        )

    def test_building_cannot_ingest_or_query(self):
        life = Lifecycle()
        assert not life.can_query()
        assert not life.can_ingest()
