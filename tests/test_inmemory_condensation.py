"""Tests for DAG condensation."""

import numpy as np
from hypothesis import given, settings

from repro.graph.digraph import Digraph
from repro.inmemory.condensation import condense, scc_size_histogram
from repro.inmemory.toposort import topological_sort

from tests.conftest import random_digraphs


class TestCondense:
    def test_figure1_condensation(self, figure1_graph):
        condensed = condense(figure1_graph)
        assert condensed.num_sccs == 6
        assert sorted(condensed.sizes.tolist()) == [1, 1, 1, 1, 4, 4]

    def test_condensation_is_acyclic(self, figure1_graph):
        condensed = condense(figure1_graph)
        topological_sort(condensed.dag)  # raises on a cycle

    def test_members_partition_nodes(self, figure1_graph):
        condensed = condense(figure1_graph)
        seen = []
        for scc in range(condensed.num_sccs):
            seen.extend(condensed.members(scc).tolist())
        assert sorted(seen) == list(range(12))

    def test_largest_and_nontrivial(self, figure1_graph):
        condensed = condense(figure1_graph)
        largest = condensed.largest_sccs(2)
        assert all(condensed.sizes[s] == 4 for s in largest)
        assert set(condensed.nontrivial_sccs().tolist()) == set(largest.tolist())

    def test_supplied_labels_are_used(self):
        g = Digraph(2, np.array([[0, 1]]))
        labels = np.array([0, 0])  # caller claims one group
        condensed = condense(g, labels, 1)
        assert condensed.num_sccs == 1
        assert condensed.dag.num_edges == 0  # internal edge dropped

    @settings(max_examples=40, deadline=None)
    @given(graph=random_digraphs())
    def test_condensation_always_acyclic(self, graph):
        condensed = condense(graph)
        topological_sort(condensed.dag)
        assert int(condensed.sizes.sum()) == graph.num_nodes


class TestHistogram:
    def test_histogram(self):
        sizes, counts = scc_size_histogram(np.array([1, 1, 2, 4, 2]))
        assert sizes.tolist() == [1, 2, 4]
        assert counts.tolist() == [2, 2, 1]
