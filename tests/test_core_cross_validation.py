"""The central correctness gauntlet: every semi-external algorithm must
produce exactly the partition in-memory Tarjan produces, over random
graphs, planted-SCC graphs, and the paper's running example."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro import compute_sccs
from repro.core.validate import partitions_equal
from repro.graph.digraph import Digraph
from repro.inmemory.tarjan import tarjan_scc
from repro.workloads.synthetic import synthetic_graph

from tests.conftest import FIGURE1_SCCS, labels_to_sets, random_digraphs

SEMI_EXTERNAL = ["1PB-SCC", "1P-SCC", "2P-SCC", "DFS-SCC"]


@pytest.mark.parametrize("algorithm", SEMI_EXTERNAL)
class TestKnownAnswers:
    def test_figure1(self, algorithm, figure1_graph):
        result = compute_sccs(figure1_graph, algorithm=algorithm, block_size=64)
        assert result.num_sccs == 6
        assert labels_to_sets(result.labels) == set(FIGURE1_SCCS)

    def test_single_giant_cycle(self, algorithm):
        n = 60
        edges = np.array([[i, (i + 1) % n] for i in range(n)])
        result = compute_sccs(Digraph(n, edges), algorithm=algorithm, block_size=64)
        assert result.num_sccs == 1

    def test_pure_dag(self, algorithm):
        edges = np.array([[i, j] for i in range(8) for j in range(i + 1, 8)])
        result = compute_sccs(Digraph(8, edges), algorithm=algorithm, block_size=64)
        assert result.num_sccs == 8

    def test_disconnected_components(self, algorithm):
        edges = np.array([[0, 1], [1, 0], [3, 4], [4, 3]])
        result = compute_sccs(Digraph(6, edges), algorithm=algorithm, block_size=64)
        assert result.num_sccs == 4

    def test_empty_graph(self, algorithm):
        result = compute_sccs(Digraph(0), algorithm=algorithm, block_size=64)
        assert result.num_sccs == 0

    def test_isolated_nodes_only(self, algorithm):
        result = compute_sccs(Digraph(5), algorithm=algorithm, block_size=64)
        assert result.num_sccs == 5

    def test_self_loops_everywhere(self, algorithm):
        edges = np.array([[i, i] for i in range(4)] + [[0, 1], [1, 0]])
        result = compute_sccs(Digraph(4, edges), algorithm=algorithm, block_size=64)
        assert result.num_sccs == 3


@pytest.mark.parametrize("algorithm", SEMI_EXTERNAL)
@settings(max_examples=25, deadline=None)
@given(graph=random_digraphs(max_nodes=25))
def test_property_matches_tarjan(algorithm, graph):
    truth, _ = tarjan_scc(graph)
    result = compute_sccs(graph, algorithm=algorithm, block_size=64)
    assert partitions_equal(truth, result.labels)


@pytest.mark.parametrize("algorithm", SEMI_EXTERNAL)
@pytest.mark.parametrize("seed", range(3))
def test_planted_graphs_match_ground_truth(algorithm, seed):
    planted = synthetic_graph(
        300,
        avg_degree=4,
        massive_sccs=[60],
        large_sccs=[15, 15],
        small_sccs=[4] * 5,
        seed=seed,
    )
    result = compute_sccs(planted.graph, algorithm=algorithm, block_size=256)
    assert partitions_equal(planted.labels, result.labels)


@pytest.mark.parametrize("algorithm", SEMI_EXTERNAL)
def test_dense_random_graph_giant_scc(algorithm):
    """Dense random digraphs have one giant SCC — a stress shape."""
    rng = np.random.default_rng(5)
    n = 80
    g = Digraph(n, rng.integers(0, n, size=(6 * n, 2)))
    truth, _ = tarjan_scc(g)
    result = compute_sccs(g, algorithm=algorithm, block_size=256)
    assert partitions_equal(truth, result.labels)


class TestResultStats:
    @pytest.mark.parametrize("algorithm", SEMI_EXTERNAL)
    def test_io_and_iterations_recorded(self, algorithm, figure1_graph):
        result = compute_sccs(figure1_graph, algorithm=algorithm, block_size=64)
        assert result.stats.io.total > 0
        assert result.stats.iterations >= 1
        assert result.stats.wall_seconds >= 0

    def test_one_phase_records_reduction_series(self, figure1_graph):
        result = compute_sccs(figure1_graph, algorithm="1P-SCC", block_size=64)
        assert len(result.stats.per_iteration) == result.stats.iterations
        total_nodes_reduced = sum(
            it.nodes_reduced for it in result.stats.per_iteration
        )
        assert total_nodes_reduced > 0  # the two 4-node SCCs contracted
