"""Stateful property test: ContractibleTree invariants under random ops.

Random interleavings of the three structural operations (pushdown,
contract_path, reject) on random valid arguments must always leave the
forest consistent: parent/children symmetry, depth = parent depth + 1,
live supernode sizes summing to n.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spanning.tree import ContractibleTree

N = 14


def _apply_random_op(tree: ContractibleTree, rng: np.random.Generator) -> None:
    live = tree.live_nodes()
    if live.size < 2:
        return
    op = rng.integers(0, 3)
    a, b = rng.choice(live, size=2, replace=False).tolist()
    if op == 0:
        # pushdown(u, v) requires no ancestor relation either way.
        if not tree.is_ancestor(a, b) and not tree.is_ancestor(b, a):
            tree.pushdown(a, b)
    elif op == 1:
        # contract_path(u, v) requires v to be an ancestor of u.
        if tree.is_ancestor(b, a):
            tree.contract_path(a, b)
        elif tree.is_ancestor(a, b):
            tree.contract_path(b, a)
    else:
        tree.reject(a)


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 100_000), steps=st.integers(1, 40))
def test_invariants_hold_under_random_operations(seed, steps):
    rng = np.random.default_rng(seed)
    tree = ContractibleTree(N)
    for _ in range(steps):
        _apply_random_op(tree, rng)
        tree.check_invariants()

    # Membership always partitions the original nodes.
    labels, count = tree.scc_labels()
    assert labels.shape == (N,)
    sizes = np.bincount(labels, minlength=count)
    assert int(sizes.sum()) == N

    # Every live representative's set size is consistent.
    for rep in tree.live_nodes().tolist():
        assert tree.ds.set_size(rep) == int((labels == labels[rep]).sum())


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_depths_bounded_by_live_count(seed):
    rng = np.random.default_rng(seed)
    tree = ContractibleTree(N)
    for _ in range(25):
        _apply_random_op(tree, rng)
    live = tree.live_nodes()
    if live.size:
        assert int(tree.depth[live].max()) <= live.size
