"""JSONL trace format: schema, round-trip, validation, reports.

The golden-file test pins schema v1 exactly — record types, span field
sets, and the accounting invariants (span I/O deltas summing to the
run's total) — so any incompatible format change has to bump
``TRACE_SCHEMA_VERSION`` on purpose.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.two_phase import TwoPhaseSCC
from repro.exceptions import ReproError
from repro.graph.diskgraph import DiskGraph
from repro.io.counter import IOStats
from repro.obs import (
    NULL_TRACER,
    TRACE_SCHEMA_VERSION,
    Tracer,
    TraceWriter,
    load_trace,
    render_report,
    validate_trace,
)
from repro.obs.trace import record_to_span, span_to_record

from tests.conftest import SMALL_BLOCK, random_digraphs

#: Exactly the keys a schema-v1 span record carries.
SPAN_KEYS = {
    "type", "id", "parent", "name", "depth", "attrs", "start", "wall",
    "io", "counters", "files",
}

#: Exactly the keys a serialized IOStats payload carries.
IO_KEYS = {
    "seq_reads", "seq_writes", "rand_reads", "rand_writes",
    "bytes_read", "bytes_written",
}


@pytest.fixture
def traced_run(tmp_path, figure1_graph):
    """A 2P-SCC run traced to disk; returns (trace_path, result)."""
    trace_path = str(tmp_path / "run.jsonl")
    disk = DiskGraph.from_digraph(
        figure1_graph, str(tmp_path / "fig1.bin"), block_size=SMALL_BLOCK
    )
    with TraceWriter(trace_path, metadata={"algorithm": "2P-SCC"}) as writer:
        result = TwoPhaseSCC().run(disk, tracer=Tracer(sink=writer))
    disk.close()
    return trace_path, result


class TestGoldenSchema:
    def test_header_is_first_and_versioned(self, traced_run):
        trace_path, _ = traced_run
        with open(trace_path, encoding="utf-8") as handle:
            records = [json.loads(line) for line in handle]
        assert records[0]["type"] == "header"
        assert records[0]["schema_version"] == TRACE_SCHEMA_VERSION == 1
        assert records[0]["metadata"] == {"algorithm": "2P-SCC"}

    def test_span_records_carry_exactly_the_v1_fields(self, traced_run):
        trace_path, _ = traced_run
        with open(trace_path, encoding="utf-8") as handle:
            records = [json.loads(line) for line in handle]
        spans = [r for r in records if r["type"] == "span"]
        assert spans, "trace holds no span records"
        for record in spans:
            assert set(record) == SPAN_KEYS
            assert set(record["io"]) == IO_KEYS

    def test_summary_is_last(self, traced_run):
        trace_path, _ = traced_run
        with open(trace_path, encoding="utf-8") as handle:
            records = [json.loads(line) for line in handle]
        assert records[-1]["type"] == "summary"
        assert records[-1]["spans"] == len(records) - 2

    def test_root_span_io_equals_run_stats(self, traced_run):
        trace_path, result = traced_run
        trace = load_trace(trace_path)
        roots = [span for span in trace.spans if span.parent_id is None]
        assert len(roots) == 1
        assert roots[0].name == "run"
        assert roots[0].io == result.stats.io

    def test_two_phase_span_taxonomy(self, traced_run):
        """The acceptance claim: one search scan, <= depth(G) pushdowns."""
        trace_path, result = traced_run
        trace = load_trace(trace_path)
        names = [span.name for span in trace.spans]
        assert names.count("tree-construction") == 1
        assert names.count("tree-search") == 1
        assert names.count("search-scan") == 1
        scans = names.count("pushdown-scan")
        assert 1 <= scans == result.stats.extras["construction_scans"]

    def test_iteration_stats_gain_io_and_sum_to_total(self, traced_run):
        _, result = traced_run
        per_iter = [entry.io for entry in result.stats.per_iteration]
        assert all(io is not None for io in per_iter)
        summed = IOStats()
        for io in per_iter:
            summed = summed + io
        assert summed.total <= result.stats.io.total

    def test_validate_trace_passes(self, traced_run):
        trace_path, _ = traced_run
        assert validate_trace(load_trace(trace_path)) == []

    def test_summary_sidecar(self, traced_run):
        trace_path, result = traced_run
        with open(trace_path + ".summary.json", encoding="utf-8") as handle:
            sidecar = json.load(handle)
        assert sidecar["type"] == "trace-summary"
        assert sidecar["schema_version"] == TRACE_SCHEMA_VERSION
        assert sidecar["trace"] == "run.jsonl"
        assert IOStats.from_dict(sidecar["io"]) == result.stats.io


class TestRoundTrip:
    def test_span_record_round_trip(self, traced_run):
        trace_path, _ = traced_run
        for span in load_trace(trace_path).spans:
            rebuilt = record_to_span(span_to_record(span))
            assert rebuilt == span

    def test_loader_skips_unknown_record_types(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"type": "header", "schema_version": 1,
                                     "metadata": {}}) + "\n")
            handle.write(json.dumps({"type": "future-extension"}) + "\n")
        trace = load_trace(path)
        assert trace.spans == []

    def test_loader_rejects_bad_json(self, tmp_path):
        path = str(tmp_path / "bad.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{not json\n")
        with pytest.raises(ReproError):
            load_trace(path)

    def test_loader_rejects_missing_header(self, tmp_path):
        path = str(tmp_path / "nohdr.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"type": "summary", "spans": 0}) + "\n")
        with pytest.raises(ReproError):
            load_trace(path)

    def test_writer_rejects_use_after_close(self, tmp_path):
        from repro.obs.tracer import Span

        writer = TraceWriter(str(tmp_path / "w.jsonl"))
        writer.close()
        with pytest.raises(ReproError):
            writer(Span(name="late", span_id=0, parent_id=None, depth=0))


class TestValidator:
    def _write(self, tmp_path, records):
        path = str(tmp_path / "v.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record) + "\n")
        return load_trace(path)

    def _span(self, span_id, parent=None, depth=0, io=None, name="s"):
        return {
            "type": "span", "id": span_id, "parent": parent, "name": name,
            "depth": depth, "attrs": {}, "start": 0.0, "wall": 0.0,
            "io": (io or IOStats()).to_dict(), "counters": {}, "files": {},
        }

    def _header(self, version=TRACE_SCHEMA_VERSION):
        return {"type": "header", "schema_version": version, "metadata": {}}

    def test_flags_wrong_schema_version(self, tmp_path):
        trace = self._write(tmp_path, [self._header(version=99)])
        assert any("schema_version" in p for p in validate_trace(trace))

    def test_flags_duplicate_ids(self, tmp_path):
        trace = self._write(
            tmp_path,
            [self._header(), self._span(0), self._span(0),
             {"type": "summary", "spans": 2, "io": IOStats().to_dict(),
              "wall_seconds": 0.0}],
        )
        assert any("duplicate" in p for p in validate_trace(trace))

    def test_flags_unresolved_parent(self, tmp_path):
        trace = self._write(
            tmp_path,
            [self._header(), self._span(1, parent=42, depth=1),
             {"type": "summary", "spans": 1, "io": IOStats().to_dict(),
              "wall_seconds": 0.0}],
        )
        assert any("unknown" in p for p in validate_trace(trace))

    def test_flags_children_io_exceeding_parent(self, tmp_path):
        child_io = IOStats(seq_reads=10, bytes_read=640)
        trace = self._write(
            tmp_path,
            [self._header(),
             self._span(1, parent=0, depth=1, io=child_io),
             self._span(0),
             {"type": "summary", "spans": 2, "io": IOStats().to_dict(),
              "wall_seconds": 0.0}],
        )
        assert any("exceeds" in p for p in validate_trace(trace))

    def test_flags_missing_summary(self, tmp_path):
        trace = self._write(tmp_path, [self._header(), self._span(0)])
        assert any("summary" in p for p in validate_trace(trace))

    def test_flags_summary_io_mismatch(self, tmp_path):
        trace = self._write(
            tmp_path,
            [self._header(), self._span(0, io=IOStats(seq_reads=5)),
             {"type": "summary", "spans": 1, "io": IOStats().to_dict(),
              "wall_seconds": 0.0}],
        )
        assert any("summary io" in p for p in validate_trace(trace))


class TestReport:
    def test_report_renders_tree_phases_and_files(self, traced_run):
        trace_path, _ = traced_run
        text = render_report(load_trace(trace_path))
        assert "trace schema v1" in text
        assert "tree-construction" in text
        assert "tree-search: 1 sequential edge scan," in text
        assert "files:" in text
        assert "fig1.bin" in text

    def test_max_depth_prunes_tree(self, traced_run):
        trace_path, _ = traced_run
        shallow = render_report(load_trace(trace_path), max_depth=0)
        assert "pushdown-scan" not in shallow.split("phases:")[0]


class TestTracingIsTransparent:
    """Enabled-vs-disabled runs must agree on labels and I/O exactly."""

    @settings(max_examples=20, deadline=None)
    @given(graph=random_digraphs(max_nodes=24))
    def test_traced_run_matches_untraced(self, tmp_path_factory, graph):
        tmp_path = tmp_path_factory.mktemp("prop")
        algo = TwoPhaseSCC()
        results = []
        for suffix, tracer in (("off", None), ("on", Tracer())):
            disk = DiskGraph.from_digraph(
                graph, str(tmp_path / f"g-{suffix}.bin"),
                block_size=SMALL_BLOCK,
            )
            try:
                results.append(algo.run(disk, tracer=tracer))
            finally:
                disk.unlink()
        untraced, traced = results
        assert np.array_equal(untraced.labels, traced.labels)
        assert untraced.num_sccs == traced.num_sccs
        assert untraced.stats.io == traced.stats.io
        assert untraced.stats.iterations == traced.stats.iterations

    def test_default_run_uses_null_tracer(self, tmp_path, figure1_graph):
        disk = DiskGraph.from_digraph(
            figure1_graph, str(tmp_path / "fig1.bin"), block_size=SMALL_BLOCK
        )
        try:
            result = TwoPhaseSCC().run(disk)
        finally:
            disk.unlink()
        assert NULL_TRACER.spans == []
        assert all(e.io is None for e in result.stats.per_iteration)
