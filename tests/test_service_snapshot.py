"""The daemon's resident snapshot: build, query, crash-resume identity."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.graph.digraph import Digraph
from repro.graph.storage import save_graph
from repro.inmemory.tarjan import tarjan_scc
from repro.io.faults import SimulatedCrash
from repro.service.snapshot import (
    build_snapshot,
    condensation_edges,
    dag_layers,
    load_labels,
    save_labels_atomic,
    snapshot_from_labels,
)


def _chain_of_cycles(num_cycles: int = 4, cycle: int = 3) -> Digraph:
    """num_cycles 3-cycles bridged in a chain: a known condensation."""
    edges = []
    for c in range(num_cycles):
        base = c * cycle
        for i in range(cycle):
            edges.append([base + i, base + (i + 1) % cycle])
        if c + 1 < num_cycles:
            edges.append([base, (c + 1) * cycle])
    return Digraph(num_cycles * cycle, np.asarray(edges, dtype=np.int64))


@pytest.fixture
def stored_graph(tmp_path):
    graph = _chain_of_cycles()
    path = str(tmp_path / "graph.rgr")
    save_graph(graph, path)
    return graph, path


class TestBuildSnapshot:
    def test_matches_in_memory_ground_truth(self, stored_graph):
        graph, path = stored_graph
        snapshot = build_snapshot(path)
        _, expected_sccs = tarjan_scc(graph)
        assert snapshot.num_sccs == expected_sccs == 4
        assert snapshot.num_nodes == graph.num_nodes
        assert sorted(snapshot.sizes.tolist()) == [3, 3, 3, 3]

    def test_reachability_through_the_condensation(self, stored_graph):
        _, path = stored_graph
        snapshot = build_snapshot(path)
        assert snapshot.reaches(0, 11)       # down the chain
        assert not snapshot.reaches(11, 0)   # never back up
        assert snapshot.reaches(1, 2)        # same SCC short-circuit

    def test_layers_follow_the_chain(self, stored_graph):
        _, path = stored_graph
        snapshot = build_snapshot(path)
        layers = [snapshot.layer_of(c * 3)["layer"] for c in range(4)]
        assert layers == [0, 1, 2, 3]
        assert snapshot.layer_of(0)["num_layers"] == 4

    def test_members_truncation(self, stored_graph):
        _, path = stored_graph
        snapshot = build_snapshot(path)
        scc = snapshot.scc_of(0)["scc"]
        full = snapshot.members(scc, limit=10)
        assert sorted(full["members"]) == [0, 1, 2] and not full["truncated"]
        cut = snapshot.members(scc, limit=2)
        assert len(cut["members"]) == 2 and cut["truncated"]
        assert cut["size"] == 3  # the true size survives truncation

    def test_out_of_range_queries_raise_cleanly(self, stored_graph):
        _, path = stored_graph
        snapshot = build_snapshot(path)
        with pytest.raises(ValueError, match="out of range"):
            snapshot.reaches(0, 99)
        with pytest.raises(ValueError, match="out of range"):
            snapshot.scc_of(-1)
        with pytest.raises(ValueError, match="out of range"):
            snapshot.members(99, limit=1)

    def test_unknown_algorithm_rejected(self, stored_graph):
        _, path = stored_graph
        with pytest.raises(ValueError, match="unknown algorithm"):
            build_snapshot(path, algorithm="NOPE")


class TestCrashResume:
    def test_interrupted_build_resumes_to_identical_fingerprint(
        self, stored_graph, tmp_path
    ):
        _, path = stored_graph
        reference = build_snapshot(path)
        ckpt = str(tmp_path / "ckpt")
        with pytest.raises(SimulatedCrash):
            build_snapshot(
                path, checkpoint_dir=ckpt, fault_plan="seed=3;crash@scan:0"
            )
        resumed = build_snapshot(path, checkpoint_dir=ckpt, resume=True)
        assert resumed.fingerprint == reference.fingerprint
        assert np.array_equal(
            np.sort(resumed.layers), np.sort(reference.layers)
        )

    def test_snapshot_from_labels_reconstructs_exactly(self, stored_graph):
        _, path = stored_graph
        built = build_snapshot(path, generation=0)
        restored = snapshot_from_labels(
            path, built.labels, generation=0
        )
        assert restored.fingerprint == built.fingerprint
        assert restored.num_sccs == built.num_sccs
        assert np.array_equal(restored.layers, built.layers)
        # GRAIL traversals are seeded, so even the index agrees.
        for u, v in [(0, 11), (11, 0), (3, 9), (9, 3)]:
            assert restored.reaches(u, v) == built.reaches(u, v)


class TestHelpers:
    def test_condensation_edges_streams_unique_pairs(self, stored_graph):
        graph, path = stored_graph
        snapshot = build_snapshot(path)
        from repro.graph.storage import open_disk_graph

        disk = open_disk_graph(path)
        try:
            pairs = condensation_edges(disk, snapshot.labels)
        finally:
            disk.close()
        assert pairs.shape == (3, 2)  # the three chain bridges
        assert np.all(pairs[:, 0] != pairs[:, 1])

    def test_dag_layers_raises_on_cycles(self):
        cyclic = Digraph(2, np.asarray([[0, 1], [1, 0]], dtype=np.int64))
        with pytest.raises(ValueError, match="cycle"):
            dag_layers(cyclic)

    def test_dag_layers_empty_graph(self):
        assert dag_layers(Digraph(0)).size == 0

    def test_label_sidecar_roundtrip_is_atomic(self, tmp_path):
        path = str(tmp_path / "labels.npy")
        labels = np.asarray([0, 0, 1, 2], dtype=np.int64)
        save_labels_atomic(labels, path)
        assert not os.path.exists(path + ".staging")
        assert np.array_equal(load_labels(path), labels)
        # Overwrite goes through the same staged swap.
        save_labels_atomic(labels[::-1].copy(), path)
        assert np.array_equal(load_labels(path), labels[::-1])

    def test_load_labels_absent_returns_none(self, tmp_path):
        assert load_labels(str(tmp_path / "missing.npy")) is None
