"""Tests for the three in-memory SCC algorithms (Tarjan/Kosaraju/Gabow).

The three implementations rest on different invariants; their agreement
on random graphs is the foundation the rest of the test suite builds on.
"""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.validate import partitions_equal
from repro.graph.digraph import Digraph
from repro.inmemory.kosaraju import kosaraju_scc
from repro.inmemory.pathbased import gabow_scc
from repro.inmemory.tarjan import tarjan_scc

from tests.conftest import FIGURE1_SCCS, labels_to_sets, random_digraphs

ALGORITHMS = [tarjan_scc, kosaraju_scc, gabow_scc]


@pytest.mark.parametrize("scc", ALGORITHMS)
class TestKnownGraphs:
    def test_empty(self, scc):
        labels, count = scc(Digraph(0))
        assert count == 0 and labels.shape == (0,)

    def test_single_node(self, scc):
        labels, count = scc(Digraph(1))
        assert count == 1 and labels[0] == 0

    def test_self_loop_is_singleton_scc(self, scc):
        labels, count = scc(Digraph(1, np.array([[0, 0]])))
        assert count == 1

    def test_two_cycle(self, scc):
        labels, count = scc(Digraph(2, np.array([[0, 1], [1, 0]])))
        assert count == 1
        assert labels[0] == labels[1]

    def test_chain_is_all_singletons(self, scc):
        g = Digraph(5, np.array([[i, i + 1] for i in range(4)]))
        labels, count = scc(g)
        assert count == 5
        assert len(set(labels.tolist())) == 5

    def test_figure1(self, scc, figure1_graph):
        labels, count = scc(figure1_graph)
        assert count == 6
        assert labels_to_sets(labels) == set(FIGURE1_SCCS)

    def test_two_cycles_bridged(self, scc):
        # 0<->1 -> 2<->3 : two SCCs, a bridge between them.
        g = Digraph(4, np.array([[0, 1], [1, 0], [1, 2], [2, 3], [3, 2]]))
        labels, count = scc(g)
        assert count == 2
        assert labels[0] == labels[1] and labels[2] == labels[3]
        assert labels[0] != labels[2]

    def test_parallel_edges_ignored(self, scc):
        g = Digraph(2, np.array([[0, 1], [0, 1], [0, 1]]))
        labels, count = scc(g)
        assert count == 2

    def test_long_cycle(self, scc):
        n = 500  # exercises the iterative (non-recursive) DFS stacks
        edges = np.array([[i, (i + 1) % n] for i in range(n)])
        labels, count = scc(Digraph(n, edges))
        assert count == 1


class TestLabelOrderConventions:
    def test_tarjan_labels_reverse_topological(self):
        g = Digraph(3, np.array([[0, 1], [1, 2]]))
        labels, _ = tarjan_scc(g)
        # Downstream SCCs complete first: label(2) < label(1) < label(0).
        assert labels[2] < labels[1] < labels[0]

    def test_kosaraju_labels_topological(self):
        g = Digraph(3, np.array([[0, 1], [1, 2]]))
        labels, _ = kosaraju_scc(g)
        assert labels[0] < labels[1] < labels[2]

    def test_kosaraju_topological_property_random(self):
        rng = np.random.default_rng(9)
        for _ in range(20):
            n = int(rng.integers(2, 60))
            g = Digraph(n, rng.integers(0, n, size=(3 * n, 2)))
            labels, _ = kosaraju_scc(g)
            # Every edge goes from a lower (or equal) label to a higher.
            mapped = labels[g.edges.astype(np.int64)]
            assert (mapped[:, 0] <= mapped[:, 1]).all()


class TestCrossAgreement:
    @settings(max_examples=80, deadline=None)
    @given(graph=random_digraphs())
    def test_all_three_agree(self, graph):
        tarjan_labels, tarjan_count = tarjan_scc(graph)
        kosaraju_labels, kosaraju_count = kosaraju_scc(graph)
        gabow_labels, gabow_count = gabow_scc(graph)
        assert tarjan_count == kosaraju_count == gabow_count
        assert partitions_equal(tarjan_labels, kosaraju_labels)
        assert partitions_equal(tarjan_labels, gabow_labels)

    @settings(max_examples=40, deadline=None)
    @given(graph=random_digraphs())
    def test_scc_counts_bounded(self, graph):
        labels, count = tarjan_scc(graph)
        assert 1 <= count <= graph.num_nodes
        assert labels.min() == 0 and labels.max() == count - 1
