"""Tests for the streamed on-disk graph generator."""

import numpy as np
import pytest

from repro.core.validate import partitions_equal
from repro.inmemory.tarjan import tarjan_scc
from repro.io.counter import IOCounter
from repro.workloads.streaming import planted_scc_graph_to_disk

from tests.conftest import SMALL_BLOCK


class TestGroundTruth:
    def test_labels_match_tarjan(self, tmp_path):
        disk, labels = planted_scc_graph_to_disk(
            300,
            [40, 12, 5],
            str(tmp_path / "g.bin"),
            avg_degree=5,
            seed=7,
            block_size=SMALL_BLOCK,
        )
        graph = disk.to_digraph()
        truth, _ = tarjan_scc(graph)
        assert partitions_equal(truth, labels)
        disk.unlink()

    def test_small_chunks_equivalent_structure(self, tmp_path):
        """Tiny chunks change nothing about the planted structure."""
        disk, labels = planted_scc_graph_to_disk(
            200,
            [30, 10],
            str(tmp_path / "c.bin"),
            avg_degree=4,
            seed=3,
            chunk_edges=16,
            block_size=SMALL_BLOCK,
        )
        graph = disk.to_digraph()
        truth, _ = tarjan_scc(graph)
        assert partitions_equal(truth, labels)
        sizes = np.bincount(labels)
        assert sorted(sizes[sizes >= 2].tolist()) == [10, 30]
        disk.unlink()

    def test_edge_budget_met(self, tmp_path):
        disk, _ = planted_scc_graph_to_disk(
            500, [100], str(tmp_path / "b.bin"), avg_degree=6, seed=1,
            block_size=SMALL_BLOCK,
        )
        target = 6 * 500
        assert abs(disk.num_edges - target) <= 0.12 * target
        disk.unlink()


class TestStreamingBehaviour:
    def test_writes_charged_to_counter(self, tmp_path):
        counter = IOCounter()
        disk, _ = planted_scc_graph_to_disk(
            200, [20], str(tmp_path / "w.bin"), seed=0,
            counter=counter, block_size=SMALL_BLOCK,
        )
        assert counter.stats.writes > 0
        disk.unlink()

    def test_algorithms_consume_directly(self, tmp_path):
        from repro.core.one_phase_batch import OnePhaseBatchSCC

        disk, labels = planted_scc_graph_to_disk(
            400, [80, 15], str(tmp_path / "a.bin"), seed=5,
            block_size=SMALL_BLOCK,
        )
        result = OnePhaseBatchSCC().run(disk)
        assert partitions_equal(labels, result.labels)
        disk.unlink()


class TestValidation:
    def test_oversized_components(self, tmp_path):
        with pytest.raises(ValueError):
            planted_scc_graph_to_disk(5, [10], str(tmp_path / "x.bin"))

    def test_tiny_component(self, tmp_path):
        with pytest.raises(ValueError):
            planted_scc_graph_to_disk(5, [1], str(tmp_path / "y.bin"))

    def test_bad_chunk(self, tmp_path):
        with pytest.raises(ValueError):
            planted_scc_graph_to_disk(
                5, [2], str(tmp_path / "z.bin"), chunk_edges=0
            )
