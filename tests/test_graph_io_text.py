"""Unit tests for text edge-list serialisation."""

import numpy as np
import pytest

from repro.exceptions import GraphFormatError
from repro.graph.digraph import Digraph
from repro.graph.io_text import read_edge_list, write_edge_list


class TestRoundtrip:
    def test_write_then_read(self, tmp_path):
        g = Digraph(5, np.array([[0, 1], [3, 4], [4, 3]]))
        path = str(tmp_path / "g.txt")
        write_edge_list(g, path)
        back = read_edge_list(path)
        assert back == g

    def test_header_preserves_isolated_nodes(self, tmp_path):
        g = Digraph(10, np.array([[0, 1]]))
        path = str(tmp_path / "iso.txt")
        write_edge_list(g, path)
        assert read_edge_list(path).num_nodes == 10

    def test_headerless_infers_node_count(self, tmp_path):
        path = tmp_path / "plain.txt"
        path.write_text("0 5\n2 3\n")
        g = read_edge_list(str(path))
        assert g.num_nodes == 6
        assert g.num_edges == 2

    def test_explicit_num_nodes_overrides(self, tmp_path):
        path = tmp_path / "n.txt"
        path.write_text("0 1\n")
        assert read_edge_list(str(path), num_nodes=7).num_nodes == 7


class TestRobustness:
    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "c.txt"
        path.write_text("# a comment\n\n0 1\n# another\n1 2\n")
        assert read_edge_list(str(path)).num_edges == 2

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0\n")
        with pytest.raises(GraphFormatError):
            read_edge_list(str(path))

    def test_non_integer_raises(self, tmp_path):
        path = tmp_path / "alpha.txt"
        path.write_text("a b\n")
        with pytest.raises(GraphFormatError):
            read_edge_list(str(path))

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("")
        g = read_edge_list(str(path))
        assert g.num_nodes == 0
        assert g.num_edges == 0
