"""Documentation contract: every public item carries a docstring."""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
]


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"


@pytest.mark.parametrize("module_name", MODULES)
def test_public_items_have_docstrings(module_name):
    module = importlib.import_module(module_name)
    missing = []
    for name, item in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(item) or inspect.isfunction(item)):
            continue
        if getattr(item, "__module__", None) != module_name:
            continue  # re-export; documented at its home
        if not inspect.getdoc(item):
            missing.append(name)
        elif inspect.isclass(item):
            for method_name, method in vars(item).items():
                if method_name.startswith("_"):
                    continue
                if inspect.isfunction(method) and not inspect.getdoc(method):
                    missing.append(f"{name}.{method_name}")
    assert not missing, f"{module_name}: missing docstrings on {missing}"


def test_readme_mentions_public_entry_points():
    readme = open("README.md", encoding="utf-8").read()
    for name in ("compute_sccs", "DiskGraph", "MemoryModel", "1PB-SCC"):
        assert name in readme
