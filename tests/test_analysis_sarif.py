"""Tier-1 tests for SARIF 2.1.0 emission and schema validation."""

from __future__ import annotations

import json

import pytest

from repro.analysis_static.engine import Violation
from repro.analysis_static.rules import ALL_RULES
from repro.analysis_static.sarif import (
    SARIF_SUBSET_SCHEMA,
    to_sarif,
    to_sarif_json,
    validate_sarif,
)


def sample_violations():
    """Two findings across two rules, one repeated rule."""
    return [
        Violation("repro/core/a.py", 10, 4, "SCAN002", "nested scan"),
        Violation("repro/io/b.py", 3, 0, "THR001", "unguarded write"),
        Violation("repro/core/a.py", 22, 8, "SCAN002", "another nested scan"),
    ]


def rule_instances():
    return [rule_cls() for rule_cls in ALL_RULES]


class TestStructure:
    def test_log_carries_version_and_schema(self):
        log = to_sarif(sample_violations(), rules=rule_instances())
        assert log["version"] == "2.1.0"
        assert log["$schema"].endswith("sarif-schema-2.1.0.json")
        assert len(log["runs"]) == 1

    def test_rule_index_points_at_the_catalog(self):
        log = to_sarif(sample_violations(), rules=rule_instances())
        run = log["runs"][0]
        catalog = run["tool"]["driver"]["rules"]
        for result in run["results"]:
            entry = catalog[result["ruleIndex"]]
            assert entry["id"] == result["ruleId"]

    def test_locations_are_one_based(self):
        # The THR001 sample sits at column 0; SARIF columns start at 1.
        log = to_sarif(sample_violations())
        regions = [
            result["locations"][0]["physicalLocation"]["region"]
            for result in log["runs"][0]["results"]
        ]
        assert all(region["startLine"] >= 1 for region in regions)
        assert all(region["startColumn"] >= 1 for region in regions)

    def test_unknown_rules_get_bare_catalog_entries(self):
        log = to_sarif(
            [Violation("repro/x.py", 1, 0, "ZZZ999", "mystery")], rules=()
        )
        catalog = log["runs"][0]["tool"]["driver"]["rules"]
        assert catalog == [{"id": "ZZZ999"}]

    def test_registered_rules_carry_descriptions(self):
        log = to_sarif([], rules=rule_instances())
        catalog = log["runs"][0]["tool"]["driver"]["rules"]
        ids = {entry["id"] for entry in catalog}
        assert {"SCAN002", "SCAN003", "THR001", "THR002", "IO003"} <= ids
        for entry in catalog:
            assert entry["shortDescription"]["text"]
            assert entry["fullDescription"]["text"]

    def test_json_form_round_trips(self):
        text = to_sarif_json(sample_violations(), rules=rule_instances())
        assert json.loads(text) == to_sarif(
            sample_violations(), rules=rule_instances()
        )


class TestSubsetValidator:
    def test_emitted_logs_conform(self):
        log = to_sarif(sample_violations(), rules=rule_instances())
        assert validate_sarif(log) == []

    def test_empty_finding_sets_conform(self):
        assert validate_sarif(to_sarif([], rules=rule_instances())) == []

    def test_wrong_version_is_rejected(self):
        log = to_sarif(sample_violations())
        log["version"] = "2.0.0"
        assert any("version" in issue for issue in validate_sarif(log))

    def test_missing_required_properties_are_rejected(self):
        log = to_sarif(sample_violations())
        del log["runs"][0]["tool"]
        assert any("tool" in issue for issue in validate_sarif(log))

    def test_type_and_minimum_violations_are_rejected(self):
        log = to_sarif(sample_violations())
        result = log["runs"][0]["results"][0]
        result["ruleIndex"] = "zero"
        region = result["locations"][0]["physicalLocation"]["region"]
        region["startLine"] = 0
        issues = validate_sarif(log)
        assert any("ruleIndex" in issue for issue in issues)
        assert any("startLine" in issue for issue in issues)


class TestFullSchema:
    def test_validates_against_the_sarif_2_1_0_schema(self):
        """Validate an emitted log against the SARIF 2.1.0 schema.

        The committed subset schema mirrors the official 2.1.0 schema
        for every emitted field; with ``jsonschema`` available the same
        document is additionally checked by a real JSON-Schema engine.
        """
        log = to_sarif(sample_violations(), rules=rule_instances())
        assert validate_sarif(log) == []
        jsonschema = pytest.importorskip("jsonschema")
        jsonschema.validate(instance=log, schema=SARIF_SUBSET_SCHEMA)
