"""Tests for the GRAIL-style reachability index."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.apps.reachability import ReachabilityIndex
from repro.graph.digraph import Digraph
from repro.inmemory.tarjan import tarjan_scc

from tests.conftest import random_digraphs


def brute_force_reachability(graph):
    """Boolean reachability matrix by BFS from every node."""
    n = graph.num_nodes
    reach = np.zeros((n, n), dtype=bool)
    indptr, indices = graph.indptr, graph.indices
    for s in range(n):
        seen = np.zeros(n, dtype=bool)
        seen[s] = True
        stack = [s]
        while stack:
            u = stack.pop()
            for v in indices[indptr[u] : indptr[u + 1]]:
                v = int(v)
                if not seen[v]:
                    seen[v] = True
                    stack.append(v)
        reach[s] = seen
    return reach


class TestKnownGraphs:
    def test_chain(self):
        g = Digraph(4, np.array([[0, 1], [1, 2], [2, 3]]))
        index = ReachabilityIndex(g)
        assert index.reaches(0, 3)
        assert not index.reaches(3, 0)
        assert index.reaches(2, 2)

    def test_scc_members_mutually_reachable(self, figure1_graph):
        index = ReachabilityIndex(figure1_graph)
        # SCC {g, h, i, j} = {6, 7, 8, 9}
        for a in (6, 7, 8, 9):
            for b in (6, 7, 8, 9):
                assert index.reaches(a, b)

    def test_precomputed_labels_accepted(self, figure1_graph):
        labels, _ = tarjan_scc(figure1_graph)
        index = ReachabilityIndex(figure1_graph, labels=labels)
        assert index.num_sccs == 6
        assert index.reaches(0, 10)  # a reaches k via h

    def test_invalid_traversals(self):
        with pytest.raises(ValueError):
            ReachabilityIndex(Digraph(1), num_traversals=0)


class TestAgainstBruteForce:
    @settings(max_examples=25, deadline=None)
    @given(graph=random_digraphs(max_nodes=20))
    def test_property_exact(self, graph):
        truth = brute_force_reachability(graph)
        index = ReachabilityIndex(graph, num_traversals=2, seed=1)
        for s in range(graph.num_nodes):
            for t in range(graph.num_nodes):
                assert index.reaches(s, t) == truth[s, t]


class TestEdgeCases:
    """Hardening: degenerate graphs and malformed queries fail cleanly."""

    def test_empty_graph_builds_and_rejects_queries(self):
        g = Digraph(0, np.empty((0, 2), dtype=np.int64))
        index = ReachabilityIndex(g)
        assert index.num_sccs == 0
        with pytest.raises(ValueError, match="out of range"):
            index.reaches(0, 0)

    def test_empty_graph_with_precomputed_labels(self):
        g = Digraph(0, np.empty((0, 2), dtype=np.int64))
        index = ReachabilityIndex(g, labels=np.empty(0, dtype=np.int64))
        assert index.num_sccs == 0

    def test_single_node_no_edges(self):
        g = Digraph(1, np.empty((0, 2), dtype=np.int64))
        index = ReachabilityIndex(g)
        assert index.num_sccs == 1
        assert index.reaches(0, 0)

    def test_single_node_self_loop(self):
        g = Digraph(1, np.array([[0, 0]]))
        index = ReachabilityIndex(g)
        assert index.reaches(0, 0)

    def test_out_of_range_ids_raise_value_error(self):
        g = Digraph(3, np.array([[0, 1], [1, 2]]))
        index = ReachabilityIndex(g)
        with pytest.raises(ValueError, match="source node 3 out of range"):
            index.reaches(3, 0)
        with pytest.raises(ValueError, match="target node -1 out of range"):
            index.reaches(0, -1)
        with pytest.raises(ValueError, match="out of range"):
            index.reaches(0, 99)

    def test_cancellation_check_is_invoked_and_propagates(self):
        # A long chain forces the fallback DFS through > 64 expansions,
        # guaranteeing the periodic check fires.
        n = 200
        edges = np.array([[i, i + 1] for i in range(n - 1)])
        index = ReachabilityIndex(Digraph(n, edges), num_traversals=1)

        calls = {"n": 0}

        def check():
            calls["n"] += 1

        assert index.reaches(0, n - 1, check=check)

        class Cancelled(Exception):
            pass

        def aborting_check():
            raise Cancelled()

        with pytest.raises(Cancelled):
            index.reaches(0, n - 1, check=aborting_check)
