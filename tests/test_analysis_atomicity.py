"""Tier-1 tests for the staging crash-window analysis (IO003)."""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis_static.atomicity import StagingProtocolRule

REPO = Path(__file__).resolve().parents[1]
FIXTURES = REPO / "tests" / "lint_fixtures"


def check(source, relpath="repro/io/mod.py"):
    """Run the IO003 rule over inline ``source``; return the violations."""
    return StagingProtocolRule().check(ast.parse(source), relpath)


class TestStrandFixture:
    def test_strand_fixture_trips_io003(self):
        source = (FIXTURES / "io" / "strand.py").read_text()
        found = check(source, "tests/lint_fixtures/io/strand.py")
        assert [v.rule for v in found] == ["IO003"]
        assert "save_snapshot" in found[0].message


class TestProtocolShapes:
    def test_guarded_stage_is_clean(self):
        source = (
            "def save(device, payload, target):\n"
            "    staging = target + '.staging'\n"
            "    try:\n"
            "        device.write(staging, payload)\n"
            "        replace_file(staging, target)\n"
            "    except BaseException:\n"
            "        abort_replace(staging, target)\n"
            "        raise\n"
        )
        assert check(source) == []

    def test_except_exception_still_leaks_base_exceptions(self):
        # `except Exception` does not cover KeyboardInterrupt /
        # SystemExit: the dispatch block keeps an escape edge, so the
        # window still strands.  The branch keeps the raising write in
        # a different block from the commit — same-block ordering is
        # deliberately forgiven, cross-block escape is not.
        body = (
            "def save(device, payload, target):\n"
            "    staging = target + '.staging'\n"
            "    try:\n"
            "        device.write(staging, payload)\n"
            "        if device.verify(staging):\n"
            "            replace_file(staging, target)\n"
            "        else:\n"
            "            abort_replace(staging, target)\n"
            "    except {clause}:\n"
            "        abort_replace(staging, target)\n"
            "        raise\n"
        )
        leaky = check(body.format(clause="Exception"))
        assert [v.rule for v in leaky] == ["IO003"]
        assert check(body.format(clause="BaseException")) == []

    def test_early_return_before_commit_is_flagged(self):
        source = (
            "def save(device, payload, target):\n"
            "    staging = target + '.staging'\n"
            "    device.write(staging, payload)\n"
            "    if not device.verify(staging):\n"
            "        return False\n"
            "    replace_file(staging, target)\n"
            "    return True\n"
        )
        assert [v.rule for v in check(source)] == ["IO003"]

    def test_commit_on_every_return_path_is_clean(self):
        source = (
            "def save(device, payload, target):\n"
            "    staging = target + '.staging'\n"
            "    try:\n"
            "        device.write(staging, payload)\n"
            "        if not device.verify(staging):\n"
            "            abort_replace(staging, target)\n"
            "            return False\n"
            "        replace_file(staging, target)\n"
            "        return True\n"
            "    except BaseException:\n"
            "        abort_replace(staging, target)\n"
            "        raise\n"
        )
        assert check(source) == []

    def test_handler_region_counts_whole_once_it_commits(self):
        # The handler calls a helper *before* abort_replace; handler
        # regions are forgiven wholesale once any handler block commits.
        source = (
            "def save(device, payload, target):\n"
            "    staging = target + '.staging'\n"
            "    try:\n"
            "        device.write(staging, payload)\n"
            "        replace_file(staging, target)\n"
            "    except BaseException:\n"
            "        log_failure(target)\n"
            "        abort_replace(staging, target)\n"
            "        raise\n"
        )
        assert check(source) == []

    def test_staging_parameter_skips_the_function(self):
        source = (
            "def sweep(staging_path):\n"
            "    os_remove(staging_path)\n"
        )
        assert check(source) == []

    def test_atomic_module_itself_is_excluded(self):
        source = (
            "def replace_file(staging, target):\n"
            "    staging_probe = staging + '.probe'\n"
            "    touch(staging_probe)\n"
        )
        assert check(source, "repro/io/atomic.py") == []


class TestRealTree:
    def test_checkpoint_and_edgefile_sources_are_clean(self):
        for name in ("checkpoint.py", "edgefile.py"):
            source = (REPO / "src" / "repro" / "io" / name).read_text()
            tree = ast.parse(source)
            found = StagingProtocolRule().check(tree, f"repro/io/{name}")
            assert found == [], name
