"""Rendering and validation: summaries, manifests, benchmark exports.

Covers the schema round-trip of ``summary.json``, the validator's
failure vocabulary, manifest fingerprint/diff semantics, and the
strict-mode contract of ``tools/render_experiments.py`` (an unreadable
or schema-less export is a reported problem, and exits non-zero under
``--strict`` instead of silently shrinking the tables).
"""

from __future__ import annotations

import json
import runpy
import sys

import numpy as np
import pytest

from repro.artifact.manifest import (
    build_manifest,
    cell_fingerprint,
    diff_manifests,
    load_manifest,
    manifest_json,
    partition_fingerprint,
)
from repro.artifact.render import (
    load_benchmark_exports,
    render_benchmark_exports,
    render_summary_markdown,
)
from repro.artifact.summary import (
    SUMMARY_SCHEMA_VERSION,
    build_summary,
    deterministic_cell,
    load_summary,
    summary_json,
    validate_summary,
)


def _cell(experiment="fig1", case="a", algorithm="1PB-SCC", status="ok",
          **overrides):
    cell = {
        "experiment": experiment, "case": case, "algorithm": algorithm,
        "status": status,
    }
    if status == "ok":
        cell.update({
            "io": {"seq_reads": 10, "seq_writes": 2, "rand_reads": 1,
                   "rand_writes": 0, "bytes_read": 640, "bytes_written": 128},
            "iterations": 3, "num_sccs": 7,
            "partition_sha256": "ab" * 32,
            "nodes": 100, "edges": 500,
            "seconds": 0.25,
        })
    cell.update(overrides)
    return cell


def _summary(cells=None):
    if cells is None:
        cells = {"fig1/a/1PB-SCC": _cell()}
    return build_summary(tier="smoke", scale=1e-4, config={}, cells=cells)


def test_summary_round_trips_through_json(tmp_path):
    summary = _summary()
    path = tmp_path / "summary.json"
    path.write_text(summary_json(summary))
    loaded = load_summary(str(path))
    assert validate_summary(loaded) == []
    assert loaded.to_dict() == summary.to_dict()
    assert summary_json(loaded) == summary_json(summary)


def test_load_summary_rejects_bad_json(tmp_path):
    path = tmp_path / "summary.json"
    path.write_text("{half written")
    with pytest.raises(ValueError, match="not valid JSON"):
        load_summary(str(path))


@pytest.mark.parametrize("mutate,needle", [
    (lambda s: setattr(s, "schema_version", 99), "schema version"),
    (lambda s: setattr(s, "tier", ""), "missing tier"),
    (lambda s: setattr(s, "scale", 0.0), "non-positive scale"),
    (lambda s: setattr(s, "cells", {}), "no cells"),
    (lambda s: s.cells["fig1/a/1PB-SCC"].pop("io"), "missing 'io'"),
    (lambda s: s.cells["fig1/a/1PB-SCC"].update(status="meh"),
     "unknown status"),
    (lambda s: s.cells["fig1/a/1PB-SCC"]["io"].update(seq_reads=-1),
     "non-negative"),
    (lambda s: s.cells["fig1/a/1PB-SCC"].update(partition_sha256="zz"),
     "sha256"),
    (lambda s: s.cells.update({"wrong/id/here": s.cells.pop("fig1/a/1PB-SCC")}),
     "does not match"),
])
def test_validate_summary_failure_modes(mutate, needle):
    summary = _summary()
    mutate(summary)
    problems = validate_summary(summary)
    assert any(needle in p for p in problems), problems


def test_deterministic_cell_excludes_wall_clock():
    cell = _cell()
    projected = deterministic_cell(cell)
    assert "seconds" not in projected
    assert "io" in projected and "partition_sha256" in projected
    # A wall-clock change must not move the fingerprint...
    faster = dict(cell, seconds=0.001)
    assert cell_fingerprint(faster) == cell_fingerprint(cell)
    # ...but a counted-I/O change must.
    drifted = dict(cell, io=dict(cell["io"], seq_reads=11))
    assert cell_fingerprint(drifted) != cell_fingerprint(cell)


def test_partition_fingerprint_is_labelling_invariant():
    labels = np.array([5, 5, 9, 9, 5], dtype=np.int64)
    relabelled = np.array([0, 0, 3, 3, 0], dtype=np.int64)
    different = np.array([0, 1, 1, 0, 0], dtype=np.int64)
    assert partition_fingerprint(labels) == partition_fingerprint(relabelled)
    assert partition_fingerprint(labels) != partition_fingerprint(different)


def test_manifest_covers_only_ok_cells():
    cells = {
        "fig1/a/1PB-SCC": _cell(),
        "fig1/a/DFS-SCC": _cell(algorithm="DFS-SCC", status="INF"),
    }
    manifest = build_manifest(_summary(cells))
    assert set(manifest["cells"]) == {"fig1/a/1PB-SCC"}


def test_manifest_json_is_canonical_and_loadable(tmp_path):
    manifest = build_manifest(_summary())
    path = tmp_path / "MANIFEST.json"
    path.write_text(manifest_json(manifest))
    assert load_manifest(str(path)) == manifest
    assert manifest_json(load_manifest(str(path))) == manifest_json(manifest)


def test_load_manifest_rejects_wrong_kind(tmp_path):
    path = tmp_path / "m.json"
    path.write_text(json.dumps({"kind": "something-else"}))
    with pytest.raises(ValueError, match="not a repro-artifact manifest"):
        load_manifest(str(path))


def test_diff_manifests_reports_all_drift_kinds():
    base = build_manifest(_summary({
        "fig1/a/1PB-SCC": _cell(),
        "fig1/b/1PB-SCC": _cell(case="b"),
    }))
    current = build_manifest(_summary({
        "fig1/a/1PB-SCC": _cell(io={"seq_reads": 99, "seq_writes": 2,
                                    "rand_reads": 1, "rand_writes": 0,
                                    "bytes_read": 640, "bytes_written": 128}),
        "fig1/c/1PB-SCC": _cell(case="c"),
    }))
    drift = "\n".join(diff_manifests(base, current))
    assert "fingerprint drift" in drift
    assert "fig1/b/1PB-SCC" in drift and "missing" in drift
    assert "fig1/c/1PB-SCC" in drift and "not in golden" in drift
    assert diff_manifests(base, base) == []


def test_render_summary_markdown_shows_every_cell():
    cells = {
        "fig1/a/1PB-SCC": _cell(),
        "fig1/a/DFS-SCC": _cell(algorithm="DFS-SCC", status="INF"),
    }
    report = render_summary_markdown(_summary(cells))
    assert "## fig1" in report
    assert "| a | 1PB-SCC | ok |" in report
    assert "| a | DFS-SCC | INF |" in report
    assert "1/2" in report  # ok/total footer


# ----------------------------------------------------------------------
# The legacy pytest-benchmark export path (tools/render_experiments.py).
# ----------------------------------------------------------------------

GOOD_EXPORT = {
    "benchmarks": [{
        "name": "test_fig12[webspam-20pct-1PB-SCC]",
        "fullname": "benchmarks/bench_fig12.py::test_fig12[...]",
        "stats": {"mean": 0.125},
        "extra_info": {"status": "ok", "ios": 42, "iterations": 4},
    }]
}


def test_load_benchmark_exports_reports_problems(tmp_path):
    (tmp_path / "good.json").write_text(json.dumps(GOOD_EXPORT))
    (tmp_path / "bad.json").write_text("{truncated")
    (tmp_path / "schemaless.json").write_text('{"version": 3}')
    records, problems = load_benchmark_exports(str(tmp_path))
    assert len(records) == 1
    assert records[0]["ios"] == 42
    assert len(problems) == 2
    assert any("bad.json" in p for p in problems)
    assert any("schemaless.json" in p and "benchmarks" in p
               for p in problems)
    table = render_benchmark_exports(records)
    assert "webspam-20pct-1PB-SCC" in table and "42" in table


def test_load_benchmark_exports_empty_dir_is_a_problem(tmp_path):
    records, problems = load_benchmark_exports(str(tmp_path))
    assert records == []
    assert len(problems) == 1


def _run_tool(tmp_path, argv, capsys):
    sys.modules.pop("__main__", None)
    old_argv = sys.argv
    sys.argv = ["render_experiments.py"] + argv
    try:
        with pytest.raises(SystemExit) as excinfo:
            runpy.run_path("tools/render_experiments.py",
                           run_name="__main__")
        return excinfo.value.code, capsys.readouterr()
    finally:
        sys.argv = old_argv


def test_render_experiments_strict_fails_on_unreadable(tmp_path, capsys):
    (tmp_path / "good.json").write_text(json.dumps(GOOD_EXPORT))
    (tmp_path / "bad.json").write_text("{truncated")
    code, captured = _run_tool(tmp_path, [str(tmp_path)], capsys)
    assert code == 0  # lenient mode still renders what it can
    assert "bad.json" in captured.err
    code, captured = _run_tool(tmp_path, [str(tmp_path), "--strict"], capsys)
    assert code == 1
    assert "strict mode" in captured.err


def test_render_experiments_strict_passes_clean(tmp_path, capsys):
    (tmp_path / "good.json").write_text(json.dumps(GOOD_EXPORT))
    code, captured = _run_tool(tmp_path, [str(tmp_path), "--strict"], capsys)
    assert code == 0
    assert "webspam-20pct-1PB-SCC" in captured.out
