"""Tests for the programmatic paper-suite driver (at toy scale)."""

import os

import pytest

from repro.bench.suite import (
    EXPERIMENTS,
    SuiteConfig,
    SuiteResult,
    run_paper_suite,
)

#: Tiny configuration so suite tests stay fast.
TOY = SuiteConfig(scale=2e-5, time_limit=20.0, webspam_degree=6.0)


class TestSuiteResult:
    def test_add_and_report(self):
        from repro.bench.harness import BenchRecord

        suite = SuiteResult()
        suite.add("exp", BenchRecord("1P-SCC", "w", "ok", seconds=1.0, ios=5))
        report = suite.report()
        assert "exp" in report and "1P-SCC" in report

    def test_write(self, tmp_path):
        from repro.bench.harness import BenchRecord

        suite = SuiteResult()
        suite.add("exp", BenchRecord("1P-SCC", "w", "ok", seconds=1.0, ios=5))
        suite.write(str(tmp_path))
        assert os.path.exists(tmp_path / "exp.csv")
        assert os.path.exists(tmp_path / "report.txt")


class TestRunSuite:
    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError):
            run_paper_suite(TOY, experiments=["fig99"])

    def test_table3_at_toy_scale(self):
        suite = run_paper_suite(TOY, experiments=["table3"])
        records = suite.records["table3"]
        assert len(records) == 12  # 3 datasets x 4 algorithms
        fast = [r for r in records if r.algorithm in ("1PB-SCC", "1P-SCC")]
        assert all(r.ok for r in fast)

    def test_table1_records_both_settings(self):
        suite = run_paper_suite(TOY, experiments=["table1"])
        records = suite.records["table1"]
        assert len(records) == 2
        assert {r.params["acceptance"] for r in records} == {True, False}

    def test_fig17_series_params(self):
        suite = run_paper_suite(TOY, experiments=["fig17"])
        for records in (suite.records["fig17-large"],
                        suite.records["fig17-small"]):
            assert len(records) == 10  # 5 x values x 2 algorithms
            assert all("num_sccs" in r.params for r in records)
            assert all(r.ok for r in records)

    def test_outdir_written(self, tmp_path):
        run_paper_suite(TOY, experiments=["table1"], outdir=str(tmp_path))
        assert os.path.exists(tmp_path / "table1.csv")

    def test_every_registered_experiment_is_callable(self):
        assert set(EXPERIMENTS) == {
            "table1", "table3", "fig12", "fig13",
            "fig14", "fig15", "fig16", "fig17",
        }

    def test_fig12_sweep_structure(self):
        suite = run_paper_suite(TOY, experiments=["fig12"])
        records = suite.records["fig12"]
        fractions = {r.params["fraction"] for r in records}
        assert fractions == {0.2, 0.4, 0.6, 0.8, 1.0}
        # baselines only at the cheapest point
        baseline = [r for r in records if r.algorithm in ("2P-SCC", "DFS-SCC")]
        assert {r.params["fraction"] for r in baseline} == {0.2}

    def test_fig13_memory_sweep_structure(self):
        suite = run_paper_suite(TOY, experiments=["fig13"])
        records = suite.records["fig13"]
        pb = [r for r in records if r.algorithm == "1PB-SCC"]
        assert len(pb) == 5 and all(r.ok for r in pb)
        factors = {r.params["memory_factor"] for r in pb}
        assert factors == {1.0, 1.5, 2.0, 2.5, 3.0}

    def test_fig15_degree_sweep_structure(self):
        suite = run_paper_suite(TOY, experiments=["fig15"])
        for scc_class in ("massive", "large", "small"):
            records = suite.records[f"fig15-{scc_class}"]
            fast = [r for r in records
                    if r.algorithm in ("1PB-SCC", "1P-SCC")]
            assert {r.params["degree"] for r in fast} == {3, 4, 5, 6, 7}
            assert all(r.ok for r in fast)

    def test_fig16_sweep_structure(self):
        suite = run_paper_suite(TOY, experiments=["fig16"])
        for scc_class, count in (("massive", 10), ("large", 10), ("small", 10)):
            records = suite.records[f"fig16-{scc_class}"]
            assert len(records) == count
            assert all(r.ok for r in records)

    def test_report_covers_all_experiments(self):
        suite = run_paper_suite(TOY, experiments=["table1", "fig17"])
        report = suite.report()
        assert "table1" in report
        assert "fig17-large" in report and "fig17-small" in report
