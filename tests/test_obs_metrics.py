"""Unit tests for the live metrics plane (registry, sampler, heartbeat)."""

import json
import os
import threading
import urllib.request

import pytest

from repro.graph.digraph import Digraph
from repro.graph.diskgraph import DiskGraph
from repro.io.counter import IOCounter
from repro.obs.heartbeat import (
    Heartbeat,
    Progress,
    estimate_remaining_blocks,
    format_heartbeat,
    predicted_blocks_per_scan,
    read_progress,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    install_io_metrics,
    parse_prometheus_text,
    series_key,
)
from repro.obs.sampler import (
    METRICS_SCHEMA_VERSION,
    MetricsSampler,
    MetricsWriter,
    PrometheusEndpoint,
    load_metrics,
    validate_metrics,
    write_prometheus_file,
)
from repro.obs.trace import TraceWriter, load_trace
from repro.obs.tracer import Tracer


def _cycle_graph(n=64):
    edges = [(i, (i + 1) % n) for i in range(n)]
    return Digraph(n, edges)


class TestSeriesKey:
    def test_bare_name(self):
        assert series_key("repro_io_read_blocks_total") == "repro_io_read_blocks_total"

    def test_labels_sorted_and_quoted(self):
        key = series_key("repro_run_info", {"b": "2", "a": "1"})
        assert key == 'repro_run_info{a="1",b="2"}'


class TestHistogram:
    def test_boundary_value_lands_in_its_le_bucket(self):
        hist = Histogram("h", buckets=(1.0, 2.0))
        hist.observe(1.0)  # le buckets are inclusive
        snap = hist.snapshot()
        assert snap["buckets"]["1.0"] == 1
        assert snap["buckets"]["2.0"] == 1
        assert snap["buckets"]["+Inf"] == 1

    def test_value_above_every_bound_counts_only_in_inf(self):
        hist = Histogram("h", buckets=(1.0, 2.0))
        hist.observe(99.0)
        snap = hist.snapshot()
        assert snap["buckets"]["1.0"] == 0
        assert snap["buckets"]["2.0"] == 0
        assert snap["buckets"]["+Inf"] == 1

    def test_buckets_are_cumulative(self):
        hist = Histogram("h", buckets=(0.5, 1.0, 5.0))
        for value in (0.1, 0.7, 0.7, 3.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["buckets"]["0.5"] == 1
        assert snap["buckets"]["1.0"] == 3
        assert snap["buckets"]["5.0"] == 4
        assert snap["buckets"]["+Inf"] == 4
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(4.5)

    def test_non_increasing_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=(2.0, 1.0))

    def test_empty_bounds_fall_back_to_defaults(self):
        from repro.obs.metrics import DEFAULT_BUCKETS

        assert Histogram("h", buckets=()).bounds == DEFAULT_BUCKETS


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_x_total")
        b = registry.counter("repro_x_total")
        assert a is b
        a.inc(3)
        assert b.value == 3

    def test_same_name_different_labels_are_distinct(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_x_total", kind="seq")
        b = registry.counter("repro_x_total", kind="rand")
        assert a is not b

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("repro_x")
        with pytest.raises(TypeError):
            registry.gauge("repro_x")

    def test_callback_gauge_polled_at_snapshot(self):
        registry = MetricsRegistry()
        box = {"v": 2.0}
        registry.register_callback("repro_depth", lambda: box["v"])
        assert registry.snapshot()["gauges"]["repro_depth"] == 2.0
        box["v"] = 7.0
        assert registry.snapshot()["gauges"]["repro_depth"] == 7.0
        registry.unregister_callback("repro_depth")
        assert "repro_depth" not in registry.snapshot()["gauges"]

    def test_broken_callback_reads_zero(self):
        registry = MetricsRegistry()
        registry.register_callback(
            "repro_bad", lambda: (_ for _ in ()).throw(RuntimeError())
        )
        assert registry.snapshot()["gauges"]["repro_bad"] == 0.0

    def test_prometheus_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("repro_reads_total", "blocks", kind="seq").inc(5)
        registry.gauge("repro_depth", "queue").set(3.5)
        registry.histogram("repro_lat_seconds", buckets=(0.1, 1.0)).observe(0.2)
        parsed = parse_prometheus_text(registry.to_prometheus())
        assert parsed['repro_reads_total{kind="seq"}'] == 5.0
        assert parsed["repro_depth"] == 3.5
        assert parsed['repro_lat_seconds_bucket{le="0.1"}'] == 0.0
        assert parsed['repro_lat_seconds_bucket{le="1"}'] == 1.0
        assert parsed['repro_lat_seconds_bucket{le="+Inf"}'] == 1.0
        assert parsed["repro_lat_seconds_count"] == 1.0

    def test_parse_rejects_malformed_line(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("this is not exposition\n")


class TestInstallIOMetrics:
    def test_counter_events_feed_series(self):
        registry = MetricsRegistry()
        counter = IOCounter()
        uninstall = install_io_metrics(registry, counter)
        try:
            counter.record_read(3, 3000)
            counter.record_read(1, 1000, sequential=False)
            counter.record_write(2, 2000)
        finally:
            uninstall()
        snap = registry.snapshot()["counters"]
        assert snap['repro_io_read_blocks_total{mode="seq"}'] == 3.0
        assert snap['repro_io_read_blocks_total{mode="rand"}'] == 1.0
        assert snap['repro_io_write_blocks_total{mode="seq"}'] == 2.0
        assert snap["repro_io_read_bytes_total"] == 4000.0
        counter.record_read(5, 5000)
        assert registry.snapshot()["counters"][
            'repro_io_read_blocks_total{mode="seq"}'
        ] == 3.0  # uninstalled: no longer observing

    def test_chains_under_tracer_attach(self, tmp_path):
        # install_io_metrics first, tracer.attach second: the tracer must
        # forward events to the metrics observer it displaced.
        registry = MetricsRegistry()
        counter = IOCounter()
        uninstall = install_io_metrics(registry, counter)
        tracer = Tracer()
        with tracer.attach(counter):
            with tracer.span("run"):
                counter.record_read(4, 4000)
        uninstall()
        snap = registry.snapshot()["counters"]
        assert snap['repro_io_read_blocks_total{mode="seq"}'] == 4.0

    def test_accounting_transparency_on_a_real_run(self, tmp_path):
        from repro.core import ALGORITHMS

        def one_run(metrics):
            disk = DiskGraph.from_digraph(
                _cycle_graph(), str(tmp_path / "g.bin"), block_size=256
            )
            try:
                result = ALGORITHMS["1P-SCC"]().run(disk, metrics=metrics)
                return result.stats.io.to_dict(), result.labels.tolist()
            finally:
                disk.unlink()

        plain_io, plain_labels = one_run(None)
        registry = MetricsRegistry()
        with MetricsSampler(registry, interval_s=0.01):
            metered_io, metered_labels = one_run(registry)
        assert metered_io == plain_io
        assert metered_labels == plain_labels


class TestMetricsWriter:
    def test_creates_missing_parent_directories(self, tmp_path):
        path = tmp_path / "a" / "b" / "run.metrics.jsonl"
        with MetricsWriter(str(path)) as writer:
            writer.write_sample(0.0, {"counters": {}, "gauges": {},
                                      "histograms": {}})
        assert path.exists()

    def test_header_samples_summary_layout(self, tmp_path):
        path = str(tmp_path / "m.jsonl")
        writer = MetricsWriter(path, metadata={"algorithm": "1P-SCC"})
        writer.write_sample(0.5, {"counters": {"repro_x_total": 1.0},
                                  "gauges": {}, "histograms": {}})
        writer.close()
        lines = [json.loads(line)
                 for line in open(path)]  # repro: allow[IO001]
        assert lines[0]["type"] == "header"
        assert lines[0]["schema_version"] == METRICS_SCHEMA_VERSION
        assert lines[0]["metadata"] == {"algorithm": "1P-SCC"}
        assert lines[1]["type"] == "sample"
        assert lines[1]["seq"] == 0
        assert lines[-1]["type"] == "summary"
        assert lines[-1]["samples"] == 1

    def test_load_and_validate_round_trip(self, tmp_path):
        path = str(tmp_path / "m.jsonl")
        registry = MetricsRegistry()
        registry.counter("repro_x_total").inc()
        with MetricsWriter(path) as writer:
            writer.write_sample(0.1, registry.snapshot())
            registry.counter("repro_x_total").inc()
            writer.write_sample(0.2, registry.snapshot())
        data = load_metrics(path)
        assert len(data.samples) == 2
        assert validate_metrics(data) == []

    def test_validate_flags_counter_regression(self, tmp_path):
        path = str(tmp_path / "m.jsonl")
        with MetricsWriter(path) as writer:
            writer.write_sample(0.1, {"counters": {"repro_x_total": 5.0},
                                      "gauges": {}, "histograms": {}})
            writer.write_sample(0.2, {"counters": {"repro_x_total": 3.0},
                                      "gauges": {}, "histograms": {}})
        problems = validate_metrics(load_metrics(path))
        assert any("repro_x_total" in problem for problem in problems)

    def test_prometheus_file_written_atomically(self, tmp_path):
        registry = MetricsRegistry()
        registry.gauge("repro_depth").set(1.0)
        prom = str(tmp_path / "metrics.prom")
        write_prometheus_file(registry, prom)
        assert not os.path.exists(prom + ".staging")
        content = open(prom).read()  # repro: allow[IO001]
        assert parse_prometheus_text(content)["repro_depth"] == 1.0


class TestMetricsSampler:
    def test_background_samples_accumulate(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("repro_x_total").inc()
        path = str(tmp_path / "m.jsonl")
        writer = MetricsWriter(path)
        sampler = MetricsSampler(registry, writer=writer, interval_s=0.01)
        deadline = threading.Event()
        deadline.wait(0.15)
        sampler.close()
        data = load_metrics(path)
        assert len(data.samples) >= 2  # several ticks plus the final one
        assert validate_metrics(data) == []

    def test_close_is_idempotent(self, tmp_path):
        writer = MetricsWriter(str(tmp_path / "m.jsonl"))
        sampler = MetricsSampler(MetricsRegistry(), writer=writer,
                                 interval_s=0.01)
        sampler.close()
        sampler.close()


class TestPrometheusEndpoint:
    def test_serves_current_registry_state(self):
        registry = MetricsRegistry()
        registry.counter("repro_hits_total").inc(7)
        with PrometheusEndpoint(registry, port=0) as endpoint:
            url = f"http://{endpoint.host}:{endpoint.port}/metrics"
            body = urllib.request.urlopen(url, timeout=5).read().decode()
        assert parse_prometheus_text(body)["repro_hits_total"] == 7.0

    def test_unknown_path_is_404(self):
        registry = MetricsRegistry()
        with PrometheusEndpoint(registry, port=0) as endpoint:
            url = f"http://{endpoint.host}:{endpoint.port}/nope"
            try:
                urllib.request.urlopen(url, timeout=5)
            except urllib.error.HTTPError as err:
                assert err.code == 404
            else:  # pragma: no cover - server must reject
                raise AssertionError("expected 404")


class TestHeartbeat:
    def _progress(self, **overrides):
        values = dict(
            algorithm="1P-SCC", iteration=2, live_nodes=500,
            live_edges=2500, initial_edges=10000, blocks_read=40,
            blocks_per_scan=10, scan_budget=2,
        )
        values.update(overrides)
        return Progress(**values)

    def test_predicted_blocks_per_scan_is_ceil(self):
        from repro.constants import EDGE_BYTES

        assert predicted_blocks_per_scan(1, 4096) == 1
        edges_per_block = 4096 // EDGE_BYTES
        assert predicted_blocks_per_scan(edges_per_block + 1, 4096) == 2
        assert predicted_blocks_per_scan(0, 4096) == 0

    def test_retention_is_geometric_mean(self):
        progress = self._progress()
        assert progress.retention == pytest.approx(0.5)

    def test_retention_none_before_first_iteration(self):
        assert self._progress(iteration=0).retention is None

    def test_retention_none_when_not_shrinking(self):
        progress = self._progress(live_edges=10000)
        assert progress.retention is None

    def test_estimate_remaining_is_geometric_series(self):
        remaining = estimate_remaining_blocks(self._progress())
        assert remaining == 40  # 2 scans * 10 blocks / (1 - 0.5)

    def test_estimate_none_without_budget(self):
        assert estimate_remaining_blocks(
            self._progress(scan_budget=0)
        ) is None

    def test_read_progress_none_before_run_publishes(self):
        assert read_progress(MetricsRegistry().snapshot()) is None

    def test_read_progress_decodes_gauges_and_read_counters(self):
        registry = MetricsRegistry()
        registry.gauge("repro_run_iteration").set(3)
        registry.gauge("repro_run_live_nodes").set(100)
        registry.gauge("repro_run_live_edges").set(400)
        registry.gauge("repro_run_initial_edges").set(1600)
        registry.gauge("repro_run_blocks_per_scan").set(5)
        registry.gauge("repro_run_scan_budget").set(2)
        registry.gauge("repro_run_info", algorithm="EM-SCC").set(1)
        registry.counter("repro_io_read_blocks_total", mode="seq").inc(9)
        registry.counter("repro_io_read_blocks_total", mode="rand").inc(4)
        progress = read_progress(registry.snapshot())
        assert progress is not None
        assert progress.algorithm == "EM-SCC"
        assert progress.iteration == 3
        assert progress.blocks_read == 13

    def test_format_includes_rate_and_eta(self):
        line = format_heartbeat(self._progress(), elapsed_s=10.0)
        assert "1P-SCC" in line
        assert "iter 2" in line
        assert "(4 blk/s)" in line
        assert "eta ~10s" in line

    def test_heartbeat_thread_prints_to_stream(self):
        import io as _io

        registry = MetricsRegistry()
        registry.gauge("repro_run_iteration").set(1)
        stream = _io.StringIO()
        beat = Heartbeat(registry, interval_s=0.01, stream=stream,
                         algorithm="2P-SCC")
        threading.Event().wait(0.1)
        beat.close()
        output = stream.getvalue()
        assert "2P-SCC" in output
        assert output.count("\n") >= 1


class TestTraceWriterDurability:
    def test_creates_missing_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "dir" / "trace.jsonl"
        writer = TraceWriter(str(path), metadata={"algorithm": "t"})
        writer.close()
        assert path.exists()
        assert load_trace(str(path)).header["schema_version"] >= 1
