"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.graph.digraph import Digraph
from repro.io.counter import IOCounter
from repro.io.edgefile import EdgeFile

#: A block size small enough that tiny test graphs still span several
#: blocks, exercising the batching paths.
SMALL_BLOCK = 64


@pytest.fixture
def counter() -> IOCounter:
    """A fresh I/O counter."""
    return IOCounter()


@pytest.fixture
def edge_file_factory(tmp_path, counter):
    """Create EdgeFiles in the test's temporary directory."""

    made = []

    def make(name="edges.bin", edges=None, block_size=SMALL_BLOCK):
        path = str(tmp_path / name)
        if edges is None:
            edge_file = EdgeFile.create(path, counter=counter, block_size=block_size)
        else:
            edge_file = EdgeFile.from_array(
                path, np.asarray(edges), counter=counter, block_size=block_size
            )
        made.append(edge_file)
        return edge_file

    yield make
    for edge_file in made:
        edge_file.device.close()


@pytest.fixture
def figure1_graph() -> Digraph:
    """The paper's running example (Fig. 1): 12 nodes, 18 edges, 2 SCCs.

    Nodes a..l are mapped to 0..11.  SCC1 = {b, c, d, e} and
    SCC2 = {g, h, i, j}; the remaining 4 nodes are singletons.
    """
    a, b, c, d, e, f, g, h, i, j, k, l = range(12)
    edges = [
        (a, b), (a, g), (a, h),
        (b, c), (b, d),
        (c, e), (c, b),
        (d, e),
        (e, b),
        (f, g),
        (g, j), (g, i),
        (h, g), (h, k),
        (i, h),
        (j, i), (j, l),
        (l, k),
    ]
    return Digraph(12, np.array(edges))


#: Ground truth partition for figure1_graph as frozensets of node ids.
FIGURE1_SCCS = [
    frozenset({1, 2, 3, 4}),   # b c d e
    frozenset({6, 7, 8, 9}),   # g h i j
    frozenset({0}),
    frozenset({5}),
    frozenset({10}),
    frozenset({11}),
]


def labels_to_sets(labels) -> set[frozenset[int]]:
    """Convert a label array into a set of frozenset groups."""
    groups: dict[int, set[int]] = {}
    for node, label in enumerate(np.asarray(labels).tolist()):
        groups.setdefault(label, set()).add(node)
    return {frozenset(group) for group in groups.values()}


@st.composite
def random_digraphs(draw, max_nodes=30, max_degree=4.0):
    """Hypothesis strategy: small random digraphs (self-loops allowed)."""
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    m = draw(st.integers(min_value=0, max_value=int(max_degree * n)))
    if m:
        flat = draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1),
                min_size=2 * m,
                max_size=2 * m,
            )
        )
        edges = np.asarray(flat, dtype=np.int64).reshape(-1, 2)
    else:
        edges = np.empty((0, 2), dtype=np.int64)
    return Digraph(n, edges)
