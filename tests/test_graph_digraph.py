"""Unit tests for the in-memory digraph."""

import numpy as np
import pytest

from repro.exceptions import GraphFormatError
from repro.graph.digraph import Digraph


class TestConstruction:
    def test_empty_graph(self):
        g = Digraph(0)
        assert g.num_nodes == 0
        assert g.num_edges == 0

    def test_nodes_without_edges(self):
        g = Digraph(5)
        assert g.num_nodes == 5
        assert g.num_edges == 0

    def test_out_of_range_endpoint_rejected(self):
        with pytest.raises(GraphFormatError):
            Digraph(3, np.array([[0, 3]]))

    def test_bad_shape_rejected(self):
        with pytest.raises(GraphFormatError):
            Digraph(3, np.array([0, 1, 2]))

    def test_negative_nodes_rejected(self):
        with pytest.raises(GraphFormatError):
            Digraph(-1)

    def test_from_edge_iter(self):
        g = Digraph.from_edge_iter(3, [(0, 1), (1, 2)])
        assert g.num_edges == 2


class TestCSR:
    def test_successors(self):
        g = Digraph(4, np.array([[0, 1], [0, 2], [1, 3], [0, 2]]))
        assert sorted(g.successors(0).tolist()) == [1, 2, 2]
        assert g.successors(1).tolist() == [3]
        assert g.successors(3).tolist() == []

    def test_out_degree(self):
        g = Digraph(3, np.array([[0, 1], [0, 2], [2, 0]]))
        assert g.out_degree(0) == 2
        assert np.asarray(g.out_degree()).tolist() == [2, 0, 1]

    def test_in_degree(self):
        g = Digraph(3, np.array([[0, 1], [2, 1]]))
        assert g.in_degree().tolist() == [0, 2, 0]

    def test_indptr_covers_all_edges(self):
        rng = np.random.default_rng(0)
        g = Digraph(20, rng.integers(0, 20, size=(100, 2)))
        assert g.indptr[-1] == 100
        assert g.indices.shape == (100,)


class TestDerived:
    def test_reverse(self):
        g = Digraph(3, np.array([[0, 1], [1, 2]]))
        r = g.reverse()
        assert sorted(map(tuple, r.edges.tolist())) == [(1, 0), (2, 1)]

    def test_double_reverse_is_identity(self):
        rng = np.random.default_rng(1)
        g = Digraph(10, rng.integers(0, 10, size=(40, 2)))
        assert g.reverse().reverse() == g

    def test_without_self_loops(self):
        g = Digraph(3, np.array([[0, 0], [0, 1], [2, 2]]))
        assert g.without_self_loops().num_edges == 1

    def test_deduplicated(self):
        g = Digraph(3, np.array([[0, 1], [0, 1], [1, 2]]))
        assert g.deduplicated().num_edges == 2

    def test_equality_is_multiset_equality(self):
        a = Digraph(3, np.array([[0, 1], [1, 2]]))
        b = Digraph(3, np.array([[1, 2], [0, 1]]))
        assert a == b

    def test_inequality_on_different_multiplicity(self):
        a = Digraph(3, np.array([[0, 1], [0, 1]]))
        b = Digraph(3, np.array([[0, 1], [1, 2]]))
        assert a != b


class TestIteration:
    def test_iter_edges_matches_storage(self):
        edges = [(0, 1), (1, 2), (2, 0)]
        g = Digraph(3, np.array(edges))
        assert list(g.iter_edges()) == edges
