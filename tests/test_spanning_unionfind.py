"""Tests for the explicit-representative union-find."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spanning.unionfind import DisjointSet


class TestBasics:
    def test_initially_all_singletons(self):
        ds = DisjointSet(5)
        assert len(ds) == 5
        assert [ds.find(i) for i in range(5)] == list(range(5))

    def test_union_into_keeps_representative(self):
        ds = DisjointSet(4)
        rep = ds.union_into(1, 0)
        assert rep == 0
        assert ds.find(1) == 0
        assert ds.set_size(0) == 2

    def test_union_into_absorbs_whole_set(self):
        ds = DisjointSet(5)
        ds.union_into(1, 0)
        ds.union_into(0, 2)  # absorb {0,1} into 2
        assert ds.find(0) == ds.find(1) == 2
        assert ds.set_size(2) == 3

    def test_union_into_requires_representative_target(self):
        ds = DisjointSet(3)
        ds.union_into(1, 0)
        with pytest.raises(ValueError):
            ds.union_into(2, 1)  # 1 is no longer a representative

    def test_union_same_set_is_noop(self):
        ds = DisjointSet(3)
        ds.union_into(1, 0)
        ds.union_into(1, 0)
        assert ds.set_size(0) == 2

    def test_same(self):
        ds = DisjointSet(3)
        assert not ds.same(0, 1)
        ds.union_into(1, 0)
        assert ds.same(0, 1)


class TestVectorised:
    def test_find_many_matches_scalar_find(self):
        ds = DisjointSet(10)
        ds.union_into(1, 0)
        ds.union_into(3, 2)
        ds.union_into(2, 0)
        xs = np.arange(10, dtype=np.int64)
        vectorised = ds.find_many(xs)
        scalar = np.array([ds.find(i) for i in range(10)])
        assert np.array_equal(vectorised, scalar)

    def test_find_many_empty(self):
        ds = DisjointSet(3)
        assert ds.find_many(np.empty(0, dtype=np.int64)).shape == (0,)

    def test_labels_contiguous(self):
        ds = DisjointSet(6)
        ds.union_into(1, 0)
        ds.union_into(5, 4)
        labels, count = ds.labels()
        assert count == 4
        assert labels[0] == labels[1]
        assert labels[4] == labels[5]
        assert set(labels.tolist()) == set(range(4))

    def test_labels_empty(self):
        labels, count = DisjointSet(0).labels()
        assert count == 0 and labels.shape == (0,)

    def test_find_many_compresses_queried_elements(self):
        # Build a chain 4 -> 3 -> 2 -> 1 -> 0 so finds have depth.
        ds = DisjointSet(5)
        for child in (1, 2, 3, 4):
            ds.parent[child] = child - 1
        ds.find_many(np.array([4, 3], dtype=np.int64))
        # The write-back points every queried element at its root ...
        assert ds.parent[4] == 0 and ds.parent[3] == 0
        # ... and leaves unqueried chain members untouched.
        assert ds.parent[2] == 1

    def test_find_many_second_pass_is_single_hop(self):
        ds = DisjointSet(6)
        for child in (1, 2, 3, 4, 5):
            ds.parent[child] = child - 1
        xs = np.arange(6, dtype=np.int64)
        first = ds.find_many(xs)
        assert (ds.parent[xs] == 0).all()
        assert np.array_equal(ds.find_many(xs), first)

    def test_union_many_into_matches_sequential(self):
        batch = DisjointSet(8)
        sequential = DisjointSet(8)
        absorbed = np.array([2, 5, 7], dtype=np.int64)
        batch.union_many_into(absorbed, 1)
        for member in absorbed.tolist():
            sequential.union_into(member, 1)
        assert np.array_equal(
            batch.find_many(np.arange(8, dtype=np.int64)),
            sequential.find_many(np.arange(8, dtype=np.int64)),
        )
        assert batch.set_size(1) == sequential.set_size(1) == 4

    def test_union_many_into_empty_is_noop(self):
        ds = DisjointSet(3)
        ds.union_many_into(np.empty(0, dtype=np.int64), 2)
        assert ds.set_size(2) == 1

    def test_union_many_into_rejects_non_representatives(self):
        ds = DisjointSet(4)
        ds.union_into(1, 0)
        with pytest.raises(ValueError):
            ds.union_many_into(np.array([1], dtype=np.int64), 2)
        with pytest.raises(ValueError):
            ds.union_many_into(np.array([2], dtype=np.int64), 1)
        with pytest.raises(ValueError):
            ds.union_many_into(np.array([2], dtype=np.int64), 2)


class TestProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=40),
        merges=st.lists(
            st.tuples(st.integers(0, 39), st.integers(0, 39)), max_size=60
        ),
    )
    def test_sizes_always_sum_to_n(self, n, merges):
        ds = DisjointSet(n)
        for a, b in merges:
            a, b = a % n, b % n
            ds.union_into(a, ds.find(b))
        roots = {ds.find(i) for i in range(n)}
        assert sum(ds.set_size(r) for r in roots) == n
