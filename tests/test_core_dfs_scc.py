"""Tests specific to the DFS-SCC baseline (Algorithms 1-2)."""

import numpy as np
import pytest

from repro.core.base import Deadline
from repro.core.dfs_scc import DFSSCC, build_dfs_tree
from repro.exceptions import AlgorithmTimeout
from repro.graph.digraph import Digraph
from repro.graph.diskgraph import DiskGraph

from tests.conftest import SMALL_BLOCK


def disk(tmp_path, graph, name="g.bin"):
    return DiskGraph.from_digraph(
        graph, str(tmp_path / name), block_size=SMALL_BLOCK
    )


def check_dfs_tree(tree, graph):
    """A spanning tree is a DFS tree iff it has no forward-cross-edges."""
    for u, v in graph.edges.tolist():
        if u == v or tree.parent[v] == u:
            continue
        if tree.depth[u] < tree.depth[v] and tree.is_ancestor(u, v):
            continue  # forward
        if tree.depth[v] < tree.depth[u] and tree.is_ancestor(v, u):
            continue  # backward
        assert tree.pre[u] > tree.pre[v], f"forward-cross edge ({u},{v}) remains"


class TestBuildDFSTree:
    def test_result_is_dfs_tree(self, tmp_path):
        rng = np.random.default_rng(0)
        g = Digraph(30, rng.integers(0, 30, size=(90, 2)))
        dg = disk(tmp_path, g)
        tree, scans = build_dfs_tree(dg, np.arange(30), Deadline("t", None))
        check_dfs_tree(tree, g)
        assert scans >= 1
        dg.unlink()

    def test_preorder_is_permutation(self, tmp_path):
        rng = np.random.default_rng(1)
        g = Digraph(20, rng.integers(0, 20, size=(60, 2)))
        dg = disk(tmp_path, g)
        tree, _ = build_dfs_tree(dg, np.arange(20), Deadline("t", None))
        assert sorted(tree.pre.tolist()) == list(range(20))
        dg.unlink()

    def test_postorder_is_permutation(self, tmp_path):
        rng = np.random.default_rng(2)
        g = Digraph(15, rng.integers(0, 15, size=(40, 2)))
        dg = disk(tmp_path, g)
        tree, _ = build_dfs_tree(dg, np.arange(15), Deadline("t", None))
        assert sorted(tree.postorder().tolist()) == list(range(15))
        dg.unlink()

    def test_root_order_respected(self, tmp_path):
        """Roots must appear in the prescribed node order (Kosaraju needs
        the first unvisited node in order to start each tree)."""
        g = Digraph(4, np.array([[2, 3]]))  # 0, 1 isolated
        dg = disk(tmp_path, g)
        order = np.array([1, 2, 0, 3])
        tree, _ = build_dfs_tree(dg, order, Deadline("t", None))
        roots = list(tree.roots)
        assert roots.index(1) < roots.index(2) < roots.index(0)
        dg.unlink()

    def test_subtree_sizes_consistent(self, tmp_path):
        rng = np.random.default_rng(3)
        g = Digraph(25, rng.integers(0, 25, size=(70, 2)))
        dg = disk(tmp_path, g)
        tree, _ = build_dfs_tree(dg, np.arange(25), Deadline("t", None))
        for v in range(25):
            manual = 1 + sum(
                tree.size[c] for c in tree.children[v]
            )
            assert tree.size[v] == manual
        dg.unlink()


class TestDFSSCC:
    def test_timeout_raises(self, tmp_path):
        rng = np.random.default_rng(4)
        g = Digraph(300, rng.integers(0, 300, size=(1500, 2)))
        dg = disk(tmp_path, g)
        with pytest.raises(AlgorithmTimeout):
            DFSSCC().run(dg, time_limit=0.0)
        dg.unlink()

    def test_extras_report_both_passes(self, tmp_path, figure1_graph):
        dg = disk(tmp_path, figure1_graph)
        result = DFSSCC().run(dg)
        assert result.stats.extras["first_pass_scans"] >= 1
        assert result.stats.extras["second_pass_scans"] >= 1
        dg.unlink()

    def test_reversed_scratch_file_cleaned_up(self, tmp_path, figure1_graph):
        dg = disk(tmp_path, figure1_graph)
        DFSSCC().run(dg)
        leftovers = [p.name for p in tmp_path.iterdir()]
        assert leftovers == ["g.bin"]
        dg.unlink()
