"""End-to-end contracts of the ``repro-scc reproduce`` pipeline.

The headline guarantees, each exercised through the real CLI entry
point on a cheap ``--cells`` subset of the smoke tier:

* **Manifest determinism** — two independent sweeps of the same plan
  produce byte-identical ``MANIFEST.json`` (and ``summary.json`` up to
  the wall-clock fields the manifest excludes).
* **Resume equivalence** — a sweep killed mid-run by a planted
  ``crash@scan`` fault (exit code 4), then continued with ``--resume``,
  yields the same byte-identical manifest: completed cells are not
  re-run, and the crashed cell resumes mid-algorithm from its
  scan-boundary checkpoint with identical counted I/O.
* **Verification** — ``--verify`` against a matching manifest exits 0;
  against a drifted golden exits 1 and names the drifted cell.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.artifact.manifest import load_manifest
from repro.artifact.summary import load_summary, validate_summary
from repro.cli import main

#: A cheap, deterministic slice of the smoke tier: four cells across
#: two experiments, every algorithm finishing in well under a second.
CELLS = ["table3/cit-patents/1PB-SCC", "table3/cit-patents/1P-SCC",
         "fig15/small-d3/*"]


def _reproduce(out_dir, *extra):
    return main(["reproduce", "--scale", "smoke", "--out", str(out_dir),
                 "--cells", *CELLS, *extra])


def _read(path):
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


@pytest.fixture(scope="module")
def baseline_sweep(tmp_path_factory):
    out = tmp_path_factory.mktemp("artifact-baseline")
    assert _reproduce(out) == 0
    return out


def test_sweep_emits_schema_valid_summary(baseline_sweep):
    summary = load_summary(
        os.path.join(baseline_sweep, "artifact", "summary.json")
    )
    assert validate_summary(summary) == []
    assert summary.tier == "smoke"
    assert len(summary.cells) == 4
    for cell in summary.cells.values():
        assert cell["status"] == "ok"
        assert isinstance(cell["io"]["seq_reads"], int)
        assert len(cell["partition_sha256"]) == 64


def test_sweep_emits_report_and_manifest(baseline_sweep):
    report = _read(os.path.join(baseline_sweep, "artifact", "report.md"))
    assert "## table3" in report and "## fig15" in report
    manifest = load_manifest(
        os.path.join(baseline_sweep, "artifact", "MANIFEST.json")
    )
    assert set(manifest["cells"]) == {
        "table3/cit-patents/1PB-SCC", "table3/cit-patents/1P-SCC",
        "fig15/small-d3/1PB-SCC", "fig15/small-d3/1P-SCC",
    }


def test_two_sweeps_produce_byte_identical_manifests(
    baseline_sweep, tmp_path
):
    again = tmp_path / "again"
    assert _reproduce(again) == 0
    assert _read(again / "artifact" / "MANIFEST.json") == _read(
        os.path.join(baseline_sweep, "artifact", "MANIFEST.json")
    )


def test_crash_then_resume_matches_clean_manifest(baseline_sweep, tmp_path):
    out = tmp_path / "crashed"
    # Plant a scan-boundary crash in the *last* cell so earlier cells
    # are already durable when the process dies.
    code = _reproduce(
        out, "--fault-cell", "fig15/small-d3/1P-SCC=seed=1;crash@scan:1"
    )
    assert code == 4  # SimulatedCrash
    assert not os.path.exists(out / "artifact" / "MANIFEST.json")
    # The completed cells are durable; the crashed cell left a
    # checkpoint to resume from.
    assert len(list((out / "cells").glob("*.json"))) == 3
    assert (out / "checkpoints" / "fig15__small-d3__1P-SCC"
            / "checkpoint.npz").exists()

    assert _reproduce(out, "--resume") == 0
    assert _read(out / "artifact" / "MANIFEST.json") == _read(
        os.path.join(baseline_sweep, "artifact", "MANIFEST.json")
    )


def test_sigint_mid_sweep_exits_130_and_resumes(baseline_sweep, tmp_path,
                                                monkeypatch):
    out = tmp_path / "interrupted"
    import repro.artifact.runner as runner_mod

    real = runner_mod._run_cell
    state = {"n": 0}

    def interrupt_second_cell(case, plan, config, paths):
        state["n"] += 1
        if state["n"] == 2:
            raise KeyboardInterrupt
        return real(case, plan, config, paths)

    monkeypatch.setattr(runner_mod, "_run_cell", interrupt_second_cell)
    assert _reproduce(out) == 130
    monkeypatch.setattr(runner_mod, "_run_cell", real)
    assert _reproduce(out, "--resume") == 0
    assert _read(out / "artifact" / "MANIFEST.json") == _read(
        os.path.join(baseline_sweep, "artifact", "MANIFEST.json")
    )


def test_verify_against_matching_manifest_passes(baseline_sweep, tmp_path):
    out = tmp_path / "verified"
    golden = os.path.join(baseline_sweep, "artifact", "MANIFEST.json")
    assert _reproduce(out, "--verify", golden) == 0


def test_verify_against_drifted_manifest_fails(baseline_sweep, tmp_path,
                                               capsys):
    golden_path = tmp_path / "drifted.json"
    golden = load_manifest(
        os.path.join(baseline_sweep, "artifact", "MANIFEST.json")
    )
    golden["cells"]["table3/cit-patents/1PB-SCC"] = "0" * 64
    golden_path.write_text(json.dumps(golden))

    out = tmp_path / "sweep"
    assert _reproduce(out, "--verify", str(golden_path)) == 1
    err = capsys.readouterr().err
    assert "table3/cit-patents/1PB-SCC" in err
    assert "fingerprint drift" in err


def test_rerun_without_resume_is_refused(baseline_sweep, capsys):
    assert _reproduce(baseline_sweep) == 2
    assert "--resume" in capsys.readouterr().err


def test_changed_plan_is_refused(baseline_sweep, capsys):
    code = main(["reproduce", "--scale", "smoke", "--out",
                 str(baseline_sweep), "--cells", "table1/*"])
    assert code == 2
    assert "different sweep" in capsys.readouterr().err


def test_verify_only_recomputes_without_running(baseline_sweep):
    manifest_path = os.path.join(baseline_sweep, "artifact", "MANIFEST.json")
    before = _read(manifest_path)
    assert _reproduce(baseline_sweep, "--verify-only",
                      "--verify", manifest_path) == 0
    assert _read(manifest_path) == before


def test_unknown_cell_pattern_is_a_config_error(tmp_path, capsys):
    code = main(["reproduce", "--scale", "smoke", "--out",
                 str(tmp_path / "x"), "--cells", "fig99/*"])
    assert code == 2
    assert "matches no" in capsys.readouterr().err


def test_malformed_fault_cell_is_a_config_error(tmp_path, capsys):
    code = main(["reproduce", "--scale", "smoke", "--out",
                 str(tmp_path / "x"), "--fault-cell", "no-equals-sign"])
    assert code == 2
    assert "CELL=SPEC" in capsys.readouterr().err
